//! The real-network channel contract: a datagram link that moves actual
//! frame bytes *now*, as opposed to [`FifoLink`](crate::FifoLink), which
//! analytically computes when a packet of a given length *would* arrive.
//!
//! The striping protocol never needed packet contents in the simulator —
//! only wire lengths touch the deficit counters — but a kernel socket
//! obviously does. [`DatagramLink`] is therefore the minimal byte-moving
//! surface the `stripe-net` subsystem stripes over: offer one encoded
//! frame, receive one encoded frame, both non-blocking. Everything above
//! (codec, scheduler, logical reception, failover) is shared with the
//! simulated path.
//!
//! Send errors reuse [`TxError`]: a full bounded send queue is
//! [`TxError::QueueFull`] (backpressure, exactly like a full simulated
//! transmit queue), an oversized frame is [`TxError::TooBig`], and a
//! socket-level failure is [`TxError::LinkDown`]. Loss in flight is the
//! network's business — a real channel reports nothing, which is the
//! point of the whole protocol.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::TxError;

/// Cumulative transmit-side evidence a link can surface for online
/// rate estimation: how much it has actually *carried* toward the
/// network, and how much it destroyed itself (queue overflow, policer,
/// socket errors). Monotone counters — estimators difference
/// successive samples, so absolute origins don't matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxEvidence {
    /// Frames the link carried (handed to or queued for the network).
    pub frames: u64,
    /// Wire bytes of those frames.
    pub bytes: u64,
    /// Frames the link itself destroyed and knows about — local queue
    /// overflow, rate policing, hard socket errors. Loss *in flight*
    /// is invisible here by definition.
    pub dropped: u64,
}

/// A non-blocking datagram channel carrying real frame bytes.
///
/// One `DatagramLink` is one striped channel: data frames, markers, and
/// control messages for channel `c` all traverse the same link, preserving
/// the per-channel FIFO the §5 synchronization protocol relies on (UDP
/// over one socket pair is FIFO on loopback and quasi-FIFO in the wild —
/// per-flow reordering is treated as loss by the marker recovery).
pub trait DatagramLink {
    /// Offer one encoded frame. Non-blocking: the frame is either handed
    /// to the network, queued locally for a later [`flush`](Self::flush),
    /// or rejected with backpressure ([`TxError::QueueFull`]).
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError>;

    /// Offer one encoded frame *without* forcing a kernel submission:
    /// links that batch (the UDP channels) park it behind any frames
    /// already deferred, to be submitted by the caller's next
    /// [`flush`](Self::flush) in the same `mmsghdr` batch. Ordering
    /// relative to earlier deferred frames is preserved. Default: plain
    /// [`send_frame`](Self::send_frame) — correct for links that never
    /// defer.
    fn send_frame_deferred(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.send_frame(frame)
    }

    /// Receive one frame into `buf`, returning its length, or `None` when
    /// nothing is ready (the readiness sweep moves to the next channel).
    /// A frame longer than `buf` is truncated by the transport, which the
    /// codec then rejects — size `buf` to [`mtu`](Self::mtu).
    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize>;

    /// Largest frame the link accepts.
    fn mtu(&self) -> usize;

    /// Offer a run of frames back to back, appending one result per frame
    /// to `out` (not cleared — batch callers compose runs). Semantically
    /// identical to per-frame [`send_frame`](Self::send_frame) calls;
    /// implementations may only amortize mechanics across the run (one
    /// backlog flush instead of one per frame — the `sendmmsg` seam),
    /// never change outcomes.
    fn send_run(&mut self, frames: &[Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        out.reserve(frames.len());
        for f in frames {
            out.push(self.send_frame(f));
        }
    }

    /// Like [`send_run`](Self::send_run), but the link may *take* each
    /// accepted frame's storage (leaving behind some valid, possibly
    /// recycled `Vec`) instead of copying the bytes — the zero-copy seam
    /// batch senders feed from their recycled frame buffers. A frame
    /// whose result is an error is left untouched. Outcomes are identical
    /// to [`send_run`](Self::send_run).
    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        self.send_run(frames, out)
    }

    /// Receive up to `bufs.len()` frames in one pass — the `recvmmsg`
    /// seam. Frame `i` lands in `bufs[i]` (each buffer must hold at least
    /// [`mtu`](Self::mtu) bytes of storage; links may also *swap* the
    /// storage for an equivalent buffer) with its length in `lens[i]`.
    /// Returns how many frames arrived; fewer than `bufs.len()` means the
    /// link is drained for now.
    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        debug_assert!(lens.len() >= bufs.len(), "one length slot per buffer");
        let mut k = 0;
        while k < bufs.len() {
            match self.recv_frame(&mut bufs[k]) {
                Some(n) => {
                    lens[k] = n;
                    k += 1;
                }
                None => break,
            }
        }
        k
    }

    /// Segmentation-offload hint: `true` when the link coalesces runs of
    /// *equal-length* frames into single kernel submissions (GSO), so
    /// callers that can afford to pad short control frames up to the
    /// surrounding data-frame length keep long trains unbroken. Purely a
    /// transmit-cost hint — implementations must deliver padded and
    /// unpadded frames identically. Default: no offload.
    fn coalesce_hint(&self) -> bool {
        false
    }

    /// Try to drain locally queued frames (after earlier backpressure).
    /// Returns how many left the queue. Default: nothing is ever queued.
    fn flush(&mut self) -> usize {
        0
    }

    /// Frames waiting in the local send queue.
    fn backlog(&self) -> usize {
        0
    }

    /// Whether the link has declared itself permanently failed — a
    /// refused socket past its grace, a crashed I/O worker. Dead links
    /// fail sends fast with [`TxError::LinkDown`]; pollers (the sender
    /// reactor) surface the flag to the failover driver so the channel
    /// is retired through the same liveness path a silent channel takes,
    /// instead of an `io::Error` bubbling out of the datapath. Default:
    /// never — in-memory links and wrappers without a failure mode
    /// simply inherit it.
    fn link_dead(&self) -> bool {
        false
    }

    /// Attempt to restore a dead link with a fresh transport: a new
    /// connected socket on the same local endpoint, a respawned I/O
    /// worker — whatever the implementation's failure mode was. Returns
    /// `true` when the link came back ready to be *re-probed* (the
    /// lifecycle treats success as "worth probing", never "healthy");
    /// `false` when the rebuild failed and the caller should back off
    /// and retry later. Implementations should treat reviving a link
    /// that never died as a cheap success. Default: links without a
    /// failure mode have nothing to rebuild — `false`, so the
    /// lifecycle keeps them parked in cooldown rather than spinning.
    fn revive(&mut self) -> bool {
        false
    }

    /// Cumulative carried-traffic counters for rate estimation, when
    /// the link keeps them. The adaptive tuner samples this each poll
    /// and differences successive snapshots into goodput/loss
    /// estimates; `None` (the default) means the link offers no
    /// evidence and estimation falls back to protocol-level signals.
    fn tx_evidence(&self) -> Option<TxEvidence> {
        None
    }
}

/// One direction of an in-memory datagram pipe (see [`datagram_pair`]):
/// frames sent here pop out of the peer's [`recv_frame`], in order, with a
/// bounded capacity. Deterministic and socket-free, for unit-testing
/// everything that stripes over a [`DatagramLink`].
#[derive(Debug)]
pub struct TestDatagramLink {
    /// Frames we transmit (the peer's receive queue).
    out: Rc<RefCell<VecDeque<Vec<u8>>>>,
    /// Frames the peer transmitted to us.
    inn: Rc<RefCell<VecDeque<Vec<u8>>>>,
    mtu: usize,
    cap: usize,
}

/// A connected pair of [`TestDatagramLink`]s with the given MTU and
/// per-direction queue capacity (in frames).
pub fn datagram_pair(mtu: usize, cap: usize) -> (TestDatagramLink, TestDatagramLink) {
    let ab = Rc::new(RefCell::new(VecDeque::new()));
    let ba = Rc::new(RefCell::new(VecDeque::new()));
    (
        TestDatagramLink {
            out: Rc::clone(&ab),
            inn: Rc::clone(&ba),
            mtu,
            cap,
        },
        TestDatagramLink {
            out: ba,
            inn: ab,
            mtu,
            cap,
        },
    )
}

impl DatagramLink for TestDatagramLink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if frame.len() > self.mtu {
            return Err(TxError::TooBig);
        }
        let mut q = self.out.borrow_mut();
        if q.len() >= self.cap {
            return Err(TxError::QueueFull);
        }
        q.push_back(frame.to_vec());
        Ok(())
    }

    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        // The twin of the kernel links' zero-copy seam: accepted frames
        // move their storage into the queue instead of being copied.
        out.reserve(frames.len());
        for frame in frames.iter_mut() {
            if frame.len() > self.mtu {
                out.push(Err(TxError::TooBig));
                continue;
            }
            let mut q = self.out.borrow_mut();
            if q.len() >= self.cap {
                out.push(Err(TxError::QueueFull));
                continue;
            }
            q.push_back(std::mem::take(frame));
            out.push(Ok(()));
        }
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        let frame = self.inn.borrow_mut().pop_front()?;
        let n = frame.len().min(buf.len());
        buf[..n].copy_from_slice(&frame[..n]);
        Some(n)
    }

    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        debug_assert!(lens.len() >= bufs.len(), "one length slot per buffer");
        let mut q = self.inn.borrow_mut();
        let mut k = 0;
        while k < bufs.len() {
            let Some(frame) = q.pop_front() else { break };
            let n = frame.len().min(bufs[k].len());
            bufs[k][..n].copy_from_slice(&frame[..n]);
            lens[k] = n;
            k += 1;
        }
        k
    }

    fn mtu(&self) -> usize {
        self.mtu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_moves_frames_in_order() {
        let (mut a, mut b) = datagram_pair(1500, 8);
        a.send_frame(&[1, 2, 3]).unwrap();
        a.send_frame(&[4]).unwrap();
        let mut buf = [0u8; 1500];
        assert_eq!(b.recv_frame(&mut buf), Some(3));
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert_eq!(b.recv_frame(&mut buf), Some(1));
        assert_eq!(buf[0], 4);
        assert_eq!(b.recv_frame(&mut buf), None);
    }

    #[test]
    fn pair_is_full_duplex() {
        let (mut a, mut b) = datagram_pair(100, 8);
        a.send_frame(&[9]).unwrap();
        b.send_frame(&[7]).unwrap();
        let mut buf = [0u8; 100];
        assert_eq!(a.recv_frame(&mut buf), Some(1));
        assert_eq!(buf[0], 7);
        assert_eq!(b.recv_frame(&mut buf), Some(1));
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn bounded_queue_backpressures() {
        let (mut a, _b) = datagram_pair(100, 2);
        a.send_frame(&[0]).unwrap();
        a.send_frame(&[1]).unwrap();
        assert_eq!(a.send_frame(&[2]), Err(TxError::QueueFull));
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, _b) = datagram_pair(4, 2);
        assert_eq!(a.send_frame(&[0; 5]), Err(TxError::TooBig));
    }

    #[test]
    fn send_run_owned_matches_send_run_outcomes() {
        let (mut a, mut a_peer) = datagram_pair(8, 3);
        let (mut b, mut b_peer) = datagram_pair(8, 3);
        // Oversized frame mid-run, then enough to overflow the queue.
        let frames: Vec<Vec<u8>> = vec![vec![1], vec![0; 9], vec![2], vec![3], vec![4]];
        let mut owned = frames.clone();
        let (mut out_ref, mut out_owned) = (Vec::new(), Vec::new());
        a.send_run(&frames, &mut out_ref);
        b.send_run_owned(&mut owned, &mut out_owned);
        assert_eq!(out_ref, out_owned);
        // Rejected frames are left untouched by the owning variant.
        assert_eq!(owned[1], vec![0; 9]);
        assert_eq!(owned[4], vec![4]);
        let mut buf = [0u8; 8];
        for want in [1u8, 2, 3] {
            assert_eq!(a_peer.recv_frame(&mut buf), Some(1));
            assert_eq!(buf[0], want);
            assert_eq!(b_peer.recv_frame(&mut buf), Some(1));
            assert_eq!(buf[0], want);
        }
    }

    #[test]
    fn recv_run_drains_in_order() {
        let (mut a, mut b) = datagram_pair(16, 8);
        for i in 0..5u8 {
            a.send_frame(&[i, i]).unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..3).map(|_| vec![0u8; 16]).collect();
        let mut lens = [0usize; 3];
        assert_eq!(b.recv_run(&mut bufs, &mut lens), 3);
        for (i, (buf, &len)) in bufs.iter().zip(&lens).enumerate() {
            assert_eq!((len, buf[0]), (2, i as u8));
        }
        assert_eq!(b.recv_run(&mut bufs, &mut lens), 2, "tail then drained");
        assert_eq!(bufs[0][0], 3);
        assert_eq!(bufs[1][0], 4);
    }

    #[test]
    fn send_run_matches_per_frame_sends() {
        let (mut a, mut b) = datagram_pair(100, 3);
        let frames: Vec<Vec<u8>> = vec![vec![1], vec![2], vec![3], vec![4]];
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert_eq!(
            out,
            vec![Ok(()), Ok(()), Ok(()), Err(TxError::QueueFull)],
            "fourth frame hits the bounded queue"
        );
        let mut buf = [0u8; 100];
        for want in 1u8..=3 {
            assert_eq!(b.recv_frame(&mut buf), Some(1));
            assert_eq!(buf[0], want);
        }
    }
}
