//! An ATM permanent virtual circuit with AAL5 segmentation — the
//! rate-settable leg of the Figure 15 testbed.
//!
//! The paper's PVC had its bandwidth "modified in hardware"; here the rate
//! is a constructor parameter swept by the benches. Two pieces of ATM
//! realism matter to the experiments:
//!
//! - **the cell tax**: AAL5 pads the payload (+8-byte trailer) to a
//!   multiple of 48 bytes and ships 53-byte cells, so goodput is at most
//!   48/53 of line rate and small packets pay proportionally more;
//! - **reassembly failure**: one lost cell destroys the whole packet —
//!   burst behaviour quite unlike Ethernet's per-frame loss.
//!
//! Markers travel as single OAM-style cells (`transmit_marker`), the
//! paper's own suggestion ("it appears feasible to implement markers using
//! OAM cells sent on the same VC"), so data cells are never touched.

use stripe_netsim::{Bandwidth, DetRng, SimDuration, SimTime};

use crate::loss::LossModel;
use crate::wire::Wire;
use crate::{FifoLink, TxError, TxResult};

/// Bytes per ATM cell on the wire.
pub const CELL_SIZE: usize = 53;
/// Payload bytes per cell.
pub const CELL_PAYLOAD: usize = 48;
/// AAL5 trailer (pad-length, CPI, length, CRC-32).
pub const AAL5_TRAILER: usize = 8;

/// Number of cells AAL5 needs for `len` payload bytes.
pub fn aal5_cells(len: usize) -> usize {
    (len + AAL5_TRAILER).div_ceil(CELL_PAYLOAD)
}

/// Wire bytes consumed by `len` payload bytes after segmentation.
pub fn aal5_wire_bytes(len: usize) -> usize {
    aal5_cells(len) * CELL_SIZE
}

/// The PVC model.
#[derive(Debug, Clone)]
pub struct AtmPvc {
    wire: Wire,
    cell_loss: LossModel,
    loss_rng: DetRng,
    mtu: usize,
    packets_lost: u64,
    packets_delivered: u64,
    cells_sent: u64,
    cells_lost: u64,
}

impl AtmPvc {
    /// A PVC at `rate` (cell line rate) with propagation `prop`, per-packet
    /// jitter up to `jitter_max`, a *per-cell* loss process, MTU `mtu`, and
    /// a deterministic seed. The paper used 8 KB "large MTU" experiments,
    /// so the MTU is a parameter rather than a constant.
    pub fn new(
        rate: Bandwidth,
        prop: SimDuration,
        jitter_max: SimDuration,
        cell_loss: LossModel,
        mtu: usize,
        seed: u64,
    ) -> Self {
        assert!(mtu > 0);
        let mut rng = DetRng::new(seed);
        let wire_seed = rng.next_u64();
        Self {
            wire: Wire::new(rate, prop, jitter_max, 128 * 1024, wire_seed),
            cell_loss,
            loss_rng: rng,
            mtu,
            packets_lost: 0,
            packets_delivered: 0,
            cells_sent: 0,
            cells_lost: 0,
        }
    }

    /// The Figure 15 sweep leg: lossless PVC at `rate`, Ethernet-matched
    /// MTU so striping MTU clamping is a non-issue.
    pub fn lossless(rate: Bandwidth, seed: u64) -> Self {
        Self::new(
            rate,
            SimDuration::from_micros(120),
            SimDuration::from_micros(15),
            LossModel::None,
            crate::ETH_MTU,
            seed,
        )
    }

    /// Send a marker as a single OAM cell: one 53-byte cell, subject to the
    /// same cell-loss process, never touching data framing.
    pub fn transmit_marker(&mut self, now: SimTime) -> TxResult {
        let (_, arrival) = self.wire.push(now, CELL_SIZE)?;
        self.cells_sent += 1;
        if self.cell_loss.lose(&mut self.loss_rng) {
            self.cells_lost += 1;
            return Err(TxError::LostInFlight);
        }
        Ok(arrival)
    }

    /// Packets lost to reassembly failure.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost
    }

    /// Packets delivered whole.
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Total cells sent (data + OAM).
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent
    }

    /// Cells lost in flight.
    pub fn cells_lost(&self) -> u64 {
        self.cells_lost
    }

    /// The cell line rate.
    pub fn rate(&self) -> Bandwidth {
        self.wire.rate()
    }

    /// Transmit-queue backlog in bytes at `now`.
    pub fn backlog_bytes(&self, now: SimTime) -> usize {
        self.wire.backlog_bytes(now)
    }
}

impl FifoLink for AtmPvc {
    fn transmit(&mut self, now: SimTime, wire_len: usize) -> TxResult {
        if wire_len > self.mtu {
            return Err(TxError::TooBig);
        }
        let cells = aal5_cells(wire_len);
        let (_, arrival) = self.wire.push(now, cells * CELL_SIZE)?;
        self.cells_sent += cells as u64;
        // Independent fate per cell; any loss is a reassembly failure.
        let mut doomed = false;
        for _ in 0..cells {
            if self.cell_loss.lose(&mut self.loss_rng) {
                self.cells_lost += 1;
                doomed = true;
            }
        }
        if doomed {
            self.packets_lost += 1;
            return Err(TxError::LostInFlight);
        }
        self.packets_delivered += 1;
        Ok(arrival)
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn busy_until(&self) -> SimTime {
        self.wire.busy_until()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aal5_cell_math() {
        assert_eq!(aal5_cells(1), 1); // 9 <= 48
        assert_eq!(aal5_cells(40), 1); // 48 exactly
        assert_eq!(aal5_cells(41), 2); // 49 > 48
        assert_eq!(aal5_cells(1500), 32); // 1508/48 = 31.4 -> 32
        assert_eq!(aal5_wire_bytes(1500), 32 * 53);
    }

    #[test]
    fn cell_tax_visible_in_goodput() {
        let mut pvc = AtmPvc::new(
            Bandwidth::mbps(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
            LossModel::None,
            1500,
            1,
        );
        let mut sent = 0u64;
        let mut last = SimTime::ZERO;
        for _ in 0..200 {
            let now = pvc.busy_until();
            if let Ok(arr) = pvc.transmit(now, 1500) {
                sent += 1500;
                last = arr;
            }
        }
        let goodput = sent as f64 * 8.0 / last.as_secs_f64() / 1e6;
        let expect = 10.0 * 1500.0 / (32.0 * 53.0);
        assert!((goodput - expect).abs() < 0.1, "{goodput} vs {expect}");
    }

    #[test]
    fn one_lost_cell_kills_the_packet() {
        // Periodic loss of exactly 1 cell in 64: a 32-cell packet dies
        // whenever its window covers the loss slot.
        let mut pvc = AtmPvc::new(
            Bandwidth::mbps(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
            LossModel::periodic(64, 1),
            1500,
            1,
        );
        let mut delivered = 0;
        let mut lost = 0;
        for _ in 0..100 {
            let now = pvc.busy_until();
            match pvc.transmit(now, 1500) {
                Ok(_) => delivered += 1,
                Err(TxError::LostInFlight) => lost += 1,
                Err(e) => panic!("{e:?}"),
            }
        }
        // Every other 32-cell packet covers a loss slot of the 64-cycle.
        assert_eq!(lost, 50, "delivered {delivered}, lost {lost}");
        assert_eq!(pvc.packets_lost(), 50);
    }

    #[test]
    fn small_packets_pay_higher_tax() {
        // 40-byte payload = 1 cell = 53 wire bytes: tax > 24%.
        let w40 = aal5_wire_bytes(40) as f64 / 40.0;
        let w1500 = aal5_wire_bytes(1500) as f64 / 1500.0;
        assert!(w40 > w1500);
        assert!(w40 > 1.3);
    }

    #[test]
    fn marker_rides_one_cell() {
        let mut pvc = AtmPvc::lossless(Bandwidth::mbps(10), 1);
        let before = pvc.cells_sent();
        pvc.transmit_marker(SimTime::ZERO).unwrap();
        assert_eq!(pvc.cells_sent() - before, 1);
    }

    #[test]
    fn mtu_is_configurable() {
        let mut pvc = AtmPvc::new(
            Bandwidth::mbps(100),
            SimDuration::ZERO,
            SimDuration::ZERO,
            LossModel::None,
            8192, // the paper's large-MTU configuration
            1,
        );
        assert!(pvc.transmit(SimTime::ZERO, 8192).is_ok());
        assert_eq!(pvc.transmit(SimTime::ZERO, 8193), Err(TxError::TooBig));
    }

    #[test]
    fn fifo_holds_across_cells() {
        let mut pvc = AtmPvc::lossless(Bandwidth::mbps(25), 3);
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let now = SimTime::from_micros(40 * i);
            if let Ok(arr) = pvc.transmit(now, 64 + (i as usize * 97) % 1400) {
                assert!(arr >= last);
                last = arr;
            }
        }
    }
}
