//! Unified fault injection: scheduled outages, corruption, duplication.
//!
//! [`crate::loss::LossModel`] covers the *statistical* error processes of
//! §2; the robustness experiments need more: a channel that goes down
//! entirely for a window of time (so liveness detection and membership
//! shrink can be exercised), payloads corrupted in flight, and duplicated
//! deliveries. [`FaultyLink`] wraps any [`FifoLink`] and layers a
//! deterministic [`FaultPlan`] on top of whatever loss the inner link
//! already models — same seed, same faults, every run.
//!
//! Outage semantics: while the plan says the link is down, transmissions
//! consume *no* wire time and nothing arrives ([`TxError::LinkDown`]) —
//! the cable is unplugged, not congested. Packets already accepted before
//! the outage began still arrive (they were in flight). Corruption
//! delivers the packet damaged ([`Delivery::corrupted`]); duplication
//! delivers it twice, back to back, each copy paying its own wire time.

use stripe_netsim::{DetRng, SimTime};

use crate::{Delivery, FifoLink, TxError, TxFate, TxResult};

/// A deterministic schedule of faults for one link.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Outage windows `[from, until)`: transmissions offered inside any
    /// window fail with [`TxError::LinkDown`].
    down: Vec<(SimTime, SimTime)>,
    /// Per-packet probability of corrupting a delivered payload.
    corrupt_p: f64,
    /// Per-packet probability of duplicating a delivered payload.
    dup_p: f64,
}

impl FaultPlan {
    /// A plan with no faults at all (the wrapper becomes transparent).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add an outage window: the link is down from `from` (inclusive) to
    /// `until` (exclusive).
    ///
    /// # Panics
    /// Panics if `until <= from`.
    pub fn down_window(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "empty outage window");
        self.down.push((from, until));
        self
    }

    /// Corrupt delivered payloads with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.corrupt_p = p;
        self
    }

    /// Duplicate delivered payloads with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.dup_p = p;
        self
    }

    /// Whether the link is inside an outage window at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.down
            .iter()
            .any(|&(from, until)| t >= from && t < until)
    }
}

/// Counters for what the fault layer actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Transmissions refused because the link was down.
    pub dropped_down: u64,
    /// Deliveries corrupted.
    pub corrupted: u64,
    /// Deliveries duplicated.
    pub duplicated: u64,
}

/// A [`FifoLink`] wrapper injecting the faults of a [`FaultPlan`].
///
/// Composes with the inner link's own loss model: the plan's faults apply
/// only to packets the inner link would have delivered.
#[derive(Debug, Clone)]
pub struct FaultyLink<L: FifoLink> {
    inner: L,
    plan: FaultPlan,
    rng: DetRng,
    stats: FaultSnapshot,
}

impl<L: FifoLink> FaultyLink<L> {
    /// Wrap `inner` with `plan`; `seed` drives the corruption/duplication
    /// draws deterministically.
    pub fn new(inner: L, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: DetRng::new(seed),
            stats: FaultSnapshot::default(),
        }
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Mutable access to the plan (e.g. to add an outage mid-experiment).
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    /// What the fault layer has done so far.
    pub fn stats(&self) -> FaultSnapshot {
        self.stats
    }
}

impl<L: FifoLink> FifoLink for FaultyLink<L> {
    fn transmit(&mut self, now: SimTime, wire_len: usize) -> TxResult {
        // The plain interface cannot express corruption or duplication:
        // corrupted packets are reported lost (the far end's checksum will
        // discard them), duplicates are silently dropped.
        match self.transmit_detailed(now, wire_len) {
            TxFate::Lost(e) => Err(e),
            TxFate::Delivered { first, .. } => {
                if first.corrupted {
                    Err(TxError::LostInFlight)
                } else {
                    Ok(first.arrival)
                }
            }
        }
    }

    fn mtu(&self) -> usize {
        self.inner.mtu()
    }

    fn busy_until(&self) -> SimTime {
        self.inner.busy_until()
    }

    fn transmit_detailed(&mut self, now: SimTime, wire_len: usize) -> TxFate {
        if self.plan.is_down(now) {
            self.stats.dropped_down += 1;
            return TxFate::Lost(TxError::LinkDown);
        }
        let arrival = match self.inner.transmit(now, wire_len) {
            Ok(t) => t,
            Err(e) => return TxFate::Lost(e),
        };
        let corrupted = self.plan.corrupt_p > 0.0 && self.rng.chance(self.plan.corrupt_p);
        if corrupted {
            self.stats.corrupted += 1;
        }
        let first = Delivery { arrival, corrupted };
        let duplicate = if self.plan.dup_p > 0.0 && self.rng.chance(self.plan.dup_p) {
            // The copy is a real transmission: it pays its own wire time
            // and keeps the link's FIFO arrival order.
            match self.inner.transmit(now, wire_len) {
                Ok(t) => {
                    self.stats.duplicated += 1;
                    Some(Delivery {
                        arrival: t,
                        corrupted: false,
                    })
                }
                Err(_) => None,
            }
        } else {
            None
        };
        TxFate::Delivered { first, duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eth::EthLink;
    use crate::loss::LossModel;
    use stripe_netsim::{Bandwidth, SimDuration};

    fn eth() -> EthLink {
        EthLink::new(
            Bandwidth::mbps(10),
            SimDuration::from_micros(100),
            SimDuration::from_micros(0),
            LossModel::None,
            1,
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn no_plan_is_transparent() {
        let mut plain = eth();
        let mut faulty = FaultyLink::new(eth(), FaultPlan::none(), 7);
        for i in 0..50u64 {
            let now = t(i);
            assert_eq!(plain.transmit(now, 500), faulty.transmit(now, 500));
        }
        assert_eq!(faulty.stats(), FaultSnapshot::default());
    }

    #[test]
    fn outage_window_drops_without_wire_time() {
        let plan = FaultPlan::none().down_window(t(10), t(20));
        let mut l = FaultyLink::new(eth(), plan, 7);
        assert!(l.transmit(t(5), 500).is_ok());
        let busy_before = l.busy_until();
        assert_eq!(l.transmit(t(10), 500), Err(TxError::LinkDown));
        assert_eq!(l.transmit(t(15), 500), Err(TxError::LinkDown));
        // Nothing entered the wire during the outage.
        assert_eq!(l.busy_until(), busy_before);
        // The boundary is exclusive: back up at t=20.
        assert!(l.transmit(t(20), 500).is_ok());
        assert_eq!(l.stats().dropped_down, 2);
    }

    #[test]
    fn corruption_is_deterministic_and_flagged() {
        let plan = FaultPlan::none().with_corruption(0.3);
        let mut a = FaultyLink::new(eth(), plan.clone(), 42);
        let mut b = FaultyLink::new(eth(), plan, 42);
        let mut corrupt = 0;
        for i in 0..1000u64 {
            let fa = a.transmit_detailed(t(i), 500);
            let fb = b.transmit_detailed(t(i), 500);
            assert_eq!(fa, fb, "same seed, same fate");
            if let TxFate::Delivered { first, .. } = fa {
                if first.corrupted {
                    corrupt += 1;
                }
            }
        }
        assert!((200..400).contains(&corrupt), "corrupted {corrupt}/1000");
        assert_eq!(a.stats().corrupted, corrupt);
    }

    #[test]
    fn duplicates_arrive_later_and_in_order() {
        let plan = FaultPlan::none().with_duplication(1.0);
        let mut l = FaultyLink::new(eth(), plan, 3);
        let TxFate::Delivered {
            first,
            duplicate: Some(dup),
        } = l.transmit_detailed(t(1), 500)
        else {
            panic!("p=1 must duplicate");
        };
        assert!(dup.arrival > first.arrival, "copy pays its own wire time");
        assert_eq!(l.stats().duplicated, 1);
        // A later packet still arrives after both copies (FIFO holds).
        let next = l.transmit_detailed(t(1), 500).arrival().unwrap();
        assert!(next > dup.arrival);
    }

    #[test]
    fn plain_transmit_hides_corruption_as_loss() {
        let plan = FaultPlan::none().with_corruption(1.0);
        let mut l = FaultyLink::new(eth(), plan, 9);
        assert_eq!(l.transmit(t(0), 500), Err(TxError::LostInFlight));
    }

    #[test]
    fn composes_with_inner_loss_model() {
        let lossy = EthLink::new(
            Bandwidth::mbps(10),
            SimDuration::from_micros(100),
            SimDuration::from_micros(0),
            LossModel::bernoulli(1.0),
            1,
        );
        let mut l = FaultyLink::new(lossy, FaultPlan::none().with_duplication(1.0), 5);
        // Inner loss wins: nothing to corrupt or duplicate.
        assert_eq!(l.transmit(t(0), 500), Err(TxError::LostInFlight));
        assert_eq!(l.stats().duplicated, 0);
    }
}
