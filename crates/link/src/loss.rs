//! Packet/cell loss processes.
//!
//! §2 allows channels to lose and corrupt packets, and explicitly models
//! channels that "occasionally deviate from FIFO delivery" as having burst
//! errors — hence the Gilbert–Elliott model alongside simple Bernoulli
//! loss. §6.3 drives loss rates all the way to 80%, so the models must stay
//! well-behaved at extreme rates.

use stripe_netsim::DetRng;

/// A loss process: each call to [`LossModel::lose`] decides the fate of one
/// packet (or cell), mutating internal channel state.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// Never lose anything.
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst model: a Good state with loss
    /// `p_good` and a Bad state with loss `p_bad`, switching with the given
    /// transition probabilities per packet.
    GilbertElliott {
        /// P(Good -> Bad) per packet.
        p_g2b: f64,
        /// P(Bad -> Good) per packet.
        p_b2g: f64,
        /// Loss probability while Good.
        p_good: f64,
        /// Loss probability while Bad.
        p_bad: f64,
        /// Current state: `true` = Bad.
        in_bad: bool,
    },
    /// Deterministically lose `burst` consecutive packets out of every
    /// `period` — reproducible loss placement for the walkthrough tests.
    Periodic {
        /// Cycle length in packets.
        period: u64,
        /// Packets lost at the start of each cycle.
        burst: u64,
        /// Packets seen so far.
        count: u64,
    },
}

impl LossModel {
    /// Independent (Bernoulli) loss at rate `p`.
    pub fn bernoulli(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        LossModel::Bernoulli { p }
    }

    /// A Gilbert–Elliott channel starting in the Good state.
    pub fn gilbert_elliott(p_g2b: f64, p_b2g: f64, p_good: f64, p_bad: f64) -> Self {
        for v in [p_g2b, p_b2g, p_good, p_bad] {
            assert!((0.0..=1.0).contains(&v), "probability {v} out of range");
        }
        LossModel::GilbertElliott {
            p_g2b,
            p_b2g,
            p_good,
            p_bad,
            in_bad: false,
        }
    }

    /// Lose the first `burst` of every `period` packets.
    ///
    /// # Panics
    /// Panics if `period == 0` or `burst > period`.
    pub fn periodic(period: u64, burst: u64) -> Self {
        assert!(period > 0 && burst <= period);
        LossModel::Periodic {
            period,
            burst,
            count: 0,
        }
    }

    /// Decide the fate of the next packet: `true` means lost.
    pub fn lose(&mut self, rng: &mut DetRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(*p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                p_good,
                p_bad,
                in_bad,
            } => {
                // State transition first, then the loss draw in the new
                // state (order is a convention; it only shifts bursts by
                // one packet).
                if *in_bad {
                    if rng.chance(*p_b2g) {
                        *in_bad = false;
                    }
                } else if rng.chance(*p_g2b) {
                    *in_bad = true;
                }
                rng.chance(if *in_bad { *p_bad } else { *p_good })
            }
            LossModel::Periodic {
                period,
                burst,
                count,
            } => {
                let lost = *count % *period < *burst;
                *count += 1;
                lost
            }
        }
    }

    /// Long-run expected loss rate (exact for the stationary models; for
    /// Gilbert–Elliott, derived from the stationary state distribution).
    pub fn expected_rate(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                p_good,
                p_bad,
                ..
            } => {
                if *p_g2b == 0.0 && *p_b2g == 0.0 {
                    return *p_good; // stuck in the initial Good state
                }
                let pi_bad = p_g2b / (p_g2b + p_b2g);
                pi_bad * p_bad + (1.0 - pi_bad) * p_good
            }
            LossModel::Periodic { period, burst, .. } => *burst as f64 / *period as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut m = LossModel::None;
        let mut rng = DetRng::new(1);
        assert!((0..1000).all(|_| !m.lose(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_converges() {
        let mut m = LossModel::bernoulli(0.2);
        let mut rng = DetRng::new(2);
        let lost = (0..100_000).filter(|_| m.lose(&mut rng)).count();
        assert!((19_000..=21_000).contains(&lost), "{lost}");
    }

    #[test]
    fn bernoulli_extreme_rates() {
        let mut rng = DetRng::new(3);
        let mut zero = LossModel::bernoulli(0.0);
        let mut one = LossModel::bernoulli(1.0);
        assert!(!(zero.lose(&mut rng)));
        assert!(one.lose(&mut rng));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_probability() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        // Mostly good, but bad spells lose everything: losses must clump.
        let mut m = LossModel::gilbert_elliott(0.01, 0.2, 0.0, 1.0);
        let mut rng = DetRng::new(4);
        let outcomes: Vec<bool> = (0..200_000).map(|_| m.lose(&mut rng)).collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        // Stationary loss = (0.01/0.21) ≈ 4.8%.
        let rate = losses as f64 / outcomes.len() as f64;
        assert!((0.035..=0.065).contains(&rate), "{rate}");
        // Burstiness: P(loss | previous loss) must far exceed the base rate.
        let mut pairs = 0;
        let mut after_loss = 0;
        for w in outcomes.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    after_loss += 1;
                }
            }
        }
        let cond = after_loss as f64 / pairs as f64;
        assert!(cond > 4.0 * rate, "cond {cond} vs rate {rate}");
    }

    #[test]
    fn gilbert_elliott_stationary_rate_formula() {
        let m = LossModel::gilbert_elliott(0.01, 0.2, 0.0, 1.0);
        let expect = 0.01 / 0.21;
        assert!((m.expected_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn periodic_is_deterministic() {
        let mut m = LossModel::periodic(5, 2);
        let mut rng = DetRng::new(5);
        let fate: Vec<bool> = (0..10).map(|_| m.lose(&mut rng)).collect();
        assert_eq!(
            fate,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        assert_eq!(m.expected_rate(), 0.4);
    }

    #[test]
    #[should_panic]
    fn periodic_burst_cannot_exceed_period() {
        let _ = LossModel::periodic(3, 4);
    }
}
