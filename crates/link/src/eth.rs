//! An Ethernet-like link: framing, type-field codepoints, and the link
//! model used as the fixed 10 Mbps leg of the Figure 15 testbed.

use bytes::{BufMut, Bytes, BytesMut};
use stripe_netsim::{Bandwidth, DetRng, SimDuration, SimTime};

use crate::loss::LossModel;
use crate::wire::Wire;
use crate::{Delivery, FifoLink, TxError, TxFate, TxResult};

/// Standard Ethernet payload MTU.
pub const ETH_MTU: usize = 1500;

/// Per-frame wire overhead: 14-byte header + 4-byte FCS + 8-byte preamble
/// + 12-byte minimum inter-frame gap, expressed in byte times.
pub const ETH_OVERHEAD: usize = 38;

/// Ethernet type-field codepoints.
///
/// §5's only requirement on the lower layer is "a distinct codepoint for
/// the marker packets"; on Ethernet that is literally a different type
/// field, which "does not alter ordinary data packets or link packet
/// formats in any way".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// Ordinary IPv4.
    Ipv4,
    /// ARP.
    Arp,
    /// IP striped across a group (strIPe data).
    StripeData,
    /// strIPe synchronization marker.
    StripeMarker,
    /// Anything else (carried verbatim).
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::StripeData => 0x88B5,
            EtherType::StripeMarker => 0x88B6,
            EtherType::Other(v) => v,
        }
    }

    /// Parse a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88B5 => EtherType::StripeData,
            0x88B6 => EtherType::StripeMarker,
            other => EtherType::Other(other),
        }
    }
}

/// A MAC address.
pub type MacAddr = [u8; 6];

/// An Ethernet frame (header + payload; FCS is implied by the overhead
/// constant and corruption is modeled by the loss process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EtherFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Type-field codepoint.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Bytes,
}

impl EtherFrame {
    /// Serialize to bytes (14-byte header + payload).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(14 + self.payload.len());
        b.put_slice(&self.dst);
        b.put_slice(&self.src);
        b.put_u16(self.ethertype.to_u16());
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Parse from bytes; `None` if shorter than a header.
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        if buf.len() < 14 {
            return None;
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        let payload = buf.split_off(14);
        Some(Self {
            dst,
            src,
            ethertype,
            payload,
        })
    }
}

/// The Ethernet link model: a [`Wire`] plus framing overhead and a loss
/// process.
#[derive(Debug, Clone)]
pub struct EthLink {
    wire: Wire,
    loss: LossModel,
    loss_rng: DetRng,
    mtu: usize,
    lost: u64,
    delivered: u64,
}

impl EthLink {
    /// A link at `rate` with propagation delay `prop`, per-packet jitter up
    /// to `jitter_max`, a 64 KiB transmit queue, the given loss model, and
    /// a deterministic seed.
    pub fn new(
        rate: Bandwidth,
        prop: SimDuration,
        jitter_max: SimDuration,
        loss: LossModel,
        seed: u64,
    ) -> Self {
        let mut rng = DetRng::new(seed);
        let wire_seed = rng.next_u64();
        Self {
            wire: Wire::new(rate, prop, jitter_max, 64 * 1024, wire_seed),
            loss,
            loss_rng: rng,
            mtu: ETH_MTU,
            lost: 0,
            delivered: 0,
        }
    }

    /// The classic 10 Mbps shared-LAN leg of the paper's testbed: 100 us
    /// propagation, modest jitter, no loss.
    pub fn classic_10mbps(seed: u64) -> Self {
        Self::new(
            Bandwidth::mbps(10),
            SimDuration::from_micros(100),
            SimDuration::from_micros(20),
            LossModel::None,
            seed,
        )
    }

    /// Packets lost in flight so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The link rate.
    pub fn rate(&self) -> Bandwidth {
        self.wire.rate()
    }

    /// Transmit-queue backlog in bytes at `now`.
    pub fn backlog_bytes(&self, now: SimTime) -> usize {
        self.wire.backlog_bytes(now)
    }
}

impl FifoLink for EthLink {
    fn transmit(&mut self, now: SimTime, wire_len: usize) -> TxResult {
        if wire_len > self.mtu {
            return Err(TxError::TooBig);
        }
        let (_end, arrival) = self.wire.push(now, wire_len + ETH_OVERHEAD)?;
        if self.loss.lose(&mut self.loss_rng) {
            self.lost += 1;
            return Err(TxError::LostInFlight);
        }
        self.delivered += 1;
        Ok(arrival)
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn busy_until(&self) -> SimTime {
        self.wire.busy_until()
    }

    fn transmit_batch(&mut self, now: SimTime, wire_lens: &[usize], out: &mut Vec<TxFate>) {
        out.reserve(wire_lens.len());
        let EthLink {
            wire,
            loss,
            loss_rng,
            mtu,
            lost,
            delivered,
        } = self;
        let mut i = 0;
        while i < wire_lens.len() {
            let len = wire_lens[i];
            let mut j = i + 1;
            while j < wire_lens.len() && wire_lens[j] == len {
                j += 1;
            }
            if len > *mtu {
                for _ in i..j {
                    out.push(TxFate::Lost(TxError::TooBig));
                }
            } else {
                // Same per-packet sequence as `transmit`: queue admission
                // first, then the loss draw only for packets that entered
                // the wire — RNG streams stay aligned with the per-packet
                // path under every loss model.
                wire.push_run(now, len + ETH_OVERHEAD, j - i, |res| {
                    out.push(match res {
                        Ok((_end, arrival)) => {
                            if loss.lose(loss_rng) {
                                *lost += 1;
                                TxFate::Lost(TxError::LostInFlight)
                            } else {
                                *delivered += 1;
                                TxFate::Delivered {
                                    first: Delivery {
                                        arrival,
                                        corrupted: false,
                                    },
                                    duplicate: None,
                                }
                            }
                        }
                        Err(e) => TxFate::Lost(e),
                    });
                });
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for t in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::StripeData,
            EtherType::StripeMarker,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn frame_roundtrip() {
        let f = EtherFrame {
            dst: [1, 2, 3, 4, 5, 6],
            src: [7, 8, 9, 10, 11, 12],
            ethertype: EtherType::StripeMarker,
            payload: Bytes::from_static(b"hello stripe"),
        };
        assert_eq!(EtherFrame::decode(f.encode()), Some(f));
    }

    #[test]
    fn decode_rejects_runt() {
        assert_eq!(EtherFrame::decode(Bytes::from_static(b"short")), None);
    }

    #[test]
    fn mtu_enforced() {
        let mut l = EthLink::classic_10mbps(1);
        assert_eq!(l.transmit(SimTime::ZERO, ETH_MTU + 1), Err(TxError::TooBig));
        assert!(l.transmit(SimTime::ZERO, ETH_MTU).is_ok());
    }

    #[test]
    fn effective_throughput_below_line_rate() {
        // Framing overhead means 10 Mbps of wire carries < 10 Mbps of
        // payload: check goodput for back-to-back 1500-byte frames.
        let mut l = EthLink::new(
            Bandwidth::mbps(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
            LossModel::None,
            1,
        );
        let mut sent = 0u64;
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let now = l.busy_until(); // pace to the wire
            if let Ok(arr) = l.transmit(now, 1500) {
                sent += 1500;
                last = arr;
            }
        }
        let goodput = sent as f64 * 8.0 / last.as_secs_f64() / 1e6;
        let expect = 10.0 * 1500.0 / (1500.0 + ETH_OVERHEAD as f64);
        assert!((goodput - expect).abs() < 0.1, "{goodput} vs {expect}");
    }

    #[test]
    fn loss_counted_but_time_consumed() {
        let mut l = EthLink::new(
            Bandwidth::mbps(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
            LossModel::bernoulli(1.0),
            1,
        );
        let before = l.busy_until();
        assert_eq!(l.transmit(SimTime::ZERO, 1000), Err(TxError::LostInFlight));
        assert!(l.busy_until() > before, "lost packet still used the wire");
        assert_eq!(l.lost(), 1);
        assert_eq!(l.delivered(), 0);
    }

    #[test]
    fn queue_full_surfaces() {
        let mut l = EthLink::classic_10mbps(1);
        let mut stuffed = 0;
        loop {
            match l.transmit(SimTime::ZERO, 1500) {
                Ok(_) => stuffed += 1,
                Err(TxError::QueueFull) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
            assert!(stuffed < 1000, "queue never filled");
        }
        // 64 KiB of queue / ~1538 wire bytes ≈ 42 frames.
        assert!((30..=50).contains(&stuffed), "{stuffed}");
    }
    #[test]
    fn transmit_batch_matches_per_packet() {
        // Every loss model, jitter on/off, runs mixing lengths (including
        // oversized frames) and queue-filling bursts: the batched fates,
        // counters, and wire state must be bit-identical to sequential
        // transmit_detailed calls.
        let models: [fn() -> LossModel; 3] = [
            || LossModel::None,
            || LossModel::bernoulli(0.2),
            || LossModel::periodic(7, 2),
        ];
        for (mi, model) in models.iter().enumerate() {
            for jitter_us in [0u64, 40] {
                let mk = || {
                    EthLink::new(
                        Bandwidth::mbps(10),
                        SimDuration::from_micros(100),
                        SimDuration::from_micros(jitter_us),
                        model(),
                        31 + mi as u64,
                    )
                };
                let mut fast = mk();
                let mut slow = mk();
                let mut now = SimTime::ZERO;
                for round in 0..30usize {
                    // Runs of equal lengths with occasional oversized and
                    // varied frames; bursts big enough to hit QueueFull.
                    let base = 100 + 83 * round;
                    let mut lens = vec![base; 5 + round % 9];
                    if round % 4 == 0 {
                        lens.push(ETH_MTU + 1);
                    }
                    lens.push(base / 2 + 40);
                    let mut fast_out = Vec::new();
                    fast.transmit_batch(now, &lens, &mut fast_out);
                    let slow_out: Vec<TxFate> = lens
                        .iter()
                        .map(|&l| slow.transmit_detailed(now, l))
                        .collect();
                    assert_eq!(
                        fast_out, slow_out,
                        "model {mi} jitter {jitter_us} round {round}"
                    );
                    assert_eq!(fast.busy_until(), slow.busy_until());
                    assert_eq!(fast.lost(), slow.lost());
                    assert_eq!(fast.delivered(), slow.delivered());
                    // Slow pacing some rounds, bursts others.
                    if round % 3 != 0 {
                        now += SimDuration::from_millis(2);
                    }
                }
            }
        }
    }
}
