//! Cell-level striping across ATM PVCs — the alternative §7 argues
//! *against*.
//!
//! "When striping end-to-end across ATM circuits, it seems advisable to
//! stripe at the packet layer. Striping cells across channels would mean
//! that AAL boundaries are unavailable within the ATM networks; however,
//! these boundaries are needed in order to implement early discard
//! policies."
//!
//! This module implements the rejected design so the `cell_vs_packet`
//! bench can quantify the paper's argument:
//!
//! - a packet's AAL5 cells are dealt round-robin across N PVCs, so *every*
//!   PVC carries a share of *every* packet;
//! - reassembly needs every cell from every PVC — one lost cell anywhere
//!   kills the packet, and the per-packet cell count is what multiplies
//!   the loss (identical exponent to single-PVC AAL5, but now the packet
//!   is also hostage to the *slowest* PVC's skew);
//! - inside the network no PVC sees AAL frame boundaries, so Early Packet
//!   Discard (dropping whole frames under congestion instead of random
//!   cells) cannot operate — modeled here by the `epd` flag on the
//!   congestion model.

use stripe_netsim::{Bandwidth, DetRng, SimDuration, SimTime};

use crate::atm::{aal5_cells, CELL_SIZE};
use crate::loss::LossModel;
use crate::wire::Wire;

/// Outcome of sending one packet through a striped-cell group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStripeOutcome {
    /// All cells arrived; the packet completes at this instant (the
    /// latest arrival across PVCs — the slowest leg gates the packet).
    Delivered(SimTime),
    /// At least one cell was lost: reassembly failure.
    Lost,
}

/// A group of PVCs carrying cell-striped traffic.
#[derive(Debug)]
pub struct CellStripedGroup {
    wires: Vec<Wire>,
    cell_loss: LossModel,
    rng: DetRng,
    next_pvc: usize,
    packets_delivered: u64,
    packets_lost: u64,
    cells_sent: u64,
}

impl CellStripedGroup {
    /// `n` PVCs at `rate` each, with per-cell loss.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(
        n: usize,
        rate: Bandwidth,
        prop: SimDuration,
        jitter_max: SimDuration,
        cell_loss: LossModel,
        seed: u64,
    ) -> Self {
        assert!(n > 0);
        let mut rng = DetRng::new(seed);
        let wires = (0..n)
            .map(|_| {
                let ws = rng.next_u64();
                Wire::new(rate, prop, jitter_max, 128 * 1024, ws)
            })
            .collect();
        Self {
            wires,
            cell_loss,
            rng,
            next_pvc: 0,
            packets_delivered: 0,
            packets_lost: 0,
            cells_sent: 0,
        }
    }

    /// Stripe one packet's cells round-robin across the PVCs.
    pub fn transmit(&mut self, now: SimTime, payload_len: usize) -> CellStripeOutcome {
        let cells = aal5_cells(payload_len);
        let mut latest = SimTime::ZERO;
        let mut doomed = false;
        for _ in 0..cells {
            let pvc = self.next_pvc;
            self.next_pvc = (self.next_pvc + 1) % self.wires.len();
            self.cells_sent += 1;
            match self.wires[pvc].push(now, CELL_SIZE) {
                Ok((_, arrival)) => {
                    if self.cell_loss.lose(&mut self.rng) {
                        doomed = true;
                    } else if arrival > latest {
                        latest = arrival;
                    }
                }
                Err(_) => doomed = true, // queue overrun on one PVC
            }
        }
        if doomed {
            self.packets_lost += 1;
            CellStripeOutcome::Lost
        } else {
            self.packets_delivered += 1;
            CellStripeOutcome::Delivered(latest)
        }
    }

    /// When every PVC transmitter is idle (for pacing).
    pub fn busy_until(&self) -> SimTime {
        self.wires
            .iter()
            .map(|w| w.busy_until())
            .max()
            .expect("non-empty")
    }

    /// Packets delivered whole.
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Packets lost to any-cell loss.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost
    }

    /// Total cells pushed onto wires.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: usize, loss: LossModel) -> CellStripedGroup {
        CellStripedGroup::new(
            n,
            Bandwidth::mbps(10),
            SimDuration::from_micros(100),
            SimDuration::ZERO,
            loss,
            7,
        )
    }

    #[test]
    fn lossless_delivery_parallelizes_cells() {
        let mut g1 = group(1, LossModel::None);
        let mut g4 = group(4, LossModel::None);
        let t1 = match g1.transmit(SimTime::ZERO, 8000) {
            CellStripeOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        let t4 = match g4.transmit(SimTime::ZERO, 8000) {
            CellStripeOutcome::Delivered(t) => t,
            other => panic!("{other:?}"),
        };
        // Four PVCs serialize a quarter of the cells each.
        assert!(
            t4 < t1,
            "striping cells must cut serialization: {t4} vs {t1}"
        );
    }

    #[test]
    fn one_lost_cell_anywhere_kills_the_packet() {
        // Deterministic: lose exactly 1 cell in 200.
        let mut g = group(4, LossModel::periodic(200, 1));
        let mut lost = 0;
        for i in 0..50 {
            let now = SimTime::from_millis(10 * (i + 1));
            if matches!(g.transmit(now, 1500), CellStripeOutcome::Lost) {
                lost += 1;
            }
        }
        // 32 cells/packet, loss slot every 200 cells: ~every 6th packet.
        assert!((6..=10).contains(&lost), "{lost}");
        assert_eq!(g.packets_lost(), lost);
    }

    #[test]
    fn loss_compounds_with_packet_size() {
        // At fixed cell-loss rate, larger packets die more often.
        let rate = 0.005;
        let mut small = group(4, LossModel::bernoulli(rate));
        let mut large = group(4, LossModel::bernoulli(rate));
        let mut small_lost = 0u32;
        let mut large_lost = 0u32;
        for i in 0..2000u64 {
            let now = SimTime::from_millis(i + 1);
            if matches!(small.transmit(now, 200), CellStripeOutcome::Lost) {
                small_lost += 1;
            }
            if matches!(large.transmit(now, 8000), CellStripeOutcome::Lost) {
                large_lost += 1;
            }
        }
        // ~1-p^5 vs ~1-p^168: the large packets die far more often.
        assert!(
            large_lost > 10 * small_lost.max(1),
            "large {large_lost} vs small {small_lost}"
        );
    }
}
