//! The per-channel lifecycle state machine: how a striped channel goes
//! from dead back to carrying traffic.
//!
//! PR 1/5 built the *kill* half of failover — liveness scoring, socket
//! hard errors, and shard panics all end in an epoch'd membership
//! shrink — but death was terminal: a transient outage permanently
//! degraded capacity. This module is the recovery half. Each channel
//! owns one [`ChannelLifecycle`] walking the chain
//!
//! ```text
//!   live → dead → cooldown → probing → rejoining → live
//!                    ↑  ↓ (rebind failed / probe timed out)
//!                    └──┘   exponential backoff, bounded retries
//! ```
//!
//! The machine is a pure clock-driven policy: it never touches sockets
//! or control frames itself. The [`SenderReactor`](crate::SenderReactor)
//! drives it — feeding in death evidence, executing the one side effect
//! the machine requests ([`LifecycleAction::Rebind`] →
//! [`DatagramLink::revive`](stripe_link::DatagramLink::revive)), and
//! reporting back what the failover driver observed (first probe ack,
//! membership-grow completion). Keeping the policy separate from the
//! I/O makes every timing path unit-testable with a synthetic clock.
//!
//! Per-step discipline (the retry-cap/cooldown/timeout shape):
//!
//! - **cooldown** — entered on death, waited out before any rebind.
//!   Doubles per failed round from [`LifecycleConfig::cooldown_base_ns`]
//!   up to [`LifecycleConfig::cooldown_max_ns`].
//! - **bounded retries** — after [`LifecycleConfig::retry_cap`] failed
//!   rebinds the attempt counter resets and the channel parks at the
//!   maximum cooldown. Recovery is never abandoned outright — the
//!   paper's premise is that striping tracks the available channel set,
//!   so a channel that comes back a minute later must still rejoin —
//!   but exhausted rounds are counted so operators can see a flapper.
//! - **probing timeout** — a rebound socket that never hears a probe
//!   ack within [`LifecycleConfig::probe_timeout_ns`] goes back to
//!   cooldown (the rebind "succeeded" but the path is still black).
//! - **rejoining timeout** — the membership-grow handshake retransmits
//!   forever in the failover driver; the lifecycle only *watches* it.
//!   If acks take longer than [`LifecycleConfig::rejoin_timeout_ns`]
//!   the channel is declared live anyway (it is already carrying
//!   traffic — the handshake completes in the background) and the
//!   timeout is counted.

/// Where a channel currently sits in the die/rejoin cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LifecycleState {
    /// Carrying traffic; the steady state.
    #[default]
    Live,
    /// Death evidence just arrived (link flag or liveness silence);
    /// transitions to [`LifecycleState::Cooldown`] on the next step.
    Dead,
    /// Waiting out the exponential backoff before the next rebind.
    Cooldown,
    /// Fresh transport in place; waiting for the first probe ack.
    Probing,
    /// First ack returned; the epoch'd membership grow is in flight.
    Rejoining,
}

impl LifecycleState {
    /// Stable wire/telemetry encoding (mirrored through the shard
    /// facade's atomics).
    pub fn as_u8(self) -> u8 {
        match self {
            LifecycleState::Live => 0,
            LifecycleState::Dead => 1,
            LifecycleState::Cooldown => 2,
            LifecycleState::Probing => 3,
            LifecycleState::Rejoining => 4,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); unknown encodings collapse to
    /// [`LifecycleState::Dead`] (the conservative reading).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => LifecycleState::Live,
            2 => LifecycleState::Cooldown,
            3 => LifecycleState::Probing,
            4 => LifecycleState::Rejoining,
            _ => LifecycleState::Dead,
        }
    }

    /// Human-readable name for logs and snapshot tables.
    pub fn as_str(self) -> &'static str {
        match self {
            LifecycleState::Live => "live",
            LifecycleState::Dead => "dead",
            LifecycleState::Cooldown => "cooldown",
            LifecycleState::Probing => "probing",
            LifecycleState::Rejoining => "rejoining",
        }
    }
}

/// Timing policy for one channel's recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleConfig {
    /// First cooldown after a death, in nanoseconds.
    pub cooldown_base_ns: u64,
    /// Cap on the doubled cooldown.
    pub cooldown_max_ns: u64,
    /// How long a rebound socket may wait for its first probe ack
    /// before the round is declared failed.
    pub probe_timeout_ns: u64,
    /// How long to wait for the membership-grow handshake before
    /// declaring the channel live with the handshake still in flight.
    pub rejoin_timeout_ns: u64,
    /// Failed rebind/probe rounds before the attempt counter resets
    /// and the channel parks at `cooldown_max_ns`.
    pub retry_cap: u32,
}

impl Default for LifecycleConfig {
    /// Wall-clock-ish defaults: 50 ms base cooldown doubling to 800 ms,
    /// 200 ms probe patience, 3 rounds per backoff cycle.
    fn default() -> Self {
        Self::with_probe_interval(50_000_000)
    }
}

impl LifecycleConfig {
    /// Derive the whole policy from the failover driver's probe
    /// interval, the one rhythm everything else already follows: the
    /// first rebind waits one probe interval, backs off to 16x, a
    /// rebound socket gets 4 intervals of probe patience (the liveness
    /// tracker re-probes a dead channel at least twice in that span),
    /// and the grow handshake gets 8 before the channel is declared
    /// live regardless.
    pub fn with_probe_interval(probe_interval_ns: u64) -> Self {
        let p = probe_interval_ns.max(1);
        LifecycleConfig {
            cooldown_base_ns: p,
            cooldown_max_ns: p.saturating_mul(16),
            probe_timeout_ns: p.saturating_mul(4),
            rejoin_timeout_ns: p.saturating_mul(8),
            retry_cap: 3,
        }
    }
}

/// What the reactor must do for the machine this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleAction {
    /// Nothing; keep polling.
    None,
    /// Cooldown has elapsed: rebuild the channel's transport
    /// ([`DatagramLink::revive`](stripe_link::DatagramLink::revive)) and
    /// report the outcome via [`ChannelLifecycle::rebind_ok`] /
    /// [`ChannelLifecycle::rebind_failed`].
    Rebind,
}

/// Counter snapshot for one channel's lifecycle (all cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleSnapshot {
    /// Current state.
    pub state: LifecycleState,
    /// Completed die→rejoin cycles (transitions back into `Live`
    /// through the grow handshake).
    pub rejoins: u64,
    /// Times the channel entered cooldown (deaths plus failed rounds).
    pub cooldowns: u64,
    /// Rebind attempts handed to the link.
    pub rebind_attempts: u64,
    /// Rebinds the link reported as failed.
    pub rebind_failures: u64,
    /// Probing phases that expired without a probe ack.
    pub probe_timeouts: u64,
    /// Rejoining phases that expired with the handshake unacked.
    pub rejoin_timeouts: u64,
    /// Backoff rounds that hit the retry cap and reset.
    pub retries_exhausted: u64,
}

/// One channel's recovery state machine. Drive it with death evidence
/// ([`on_dead`](Self::on_dead)), clock steps
/// ([`advance`](Self::advance)), rebind outcomes, and driver
/// observations ([`on_recovered`](Self::on_recovered),
/// [`on_rejoin_complete`](Self::on_rejoin_complete)).
#[derive(Debug, Clone)]
pub struct ChannelLifecycle {
    cfg: LifecycleConfig,
    state: LifecycleState,
    /// Current (already escalated) cooldown length.
    cooldown_ns: u64,
    /// Deadline for the current timed state (cooldown end, probe
    /// deadline, rejoin deadline).
    until_ns: u64,
    /// Failed rounds in the current backoff cycle.
    attempts: u32,
    snap: LifecycleSnapshot,
}

impl ChannelLifecycle {
    /// A live channel under `cfg`.
    pub fn new(cfg: LifecycleConfig) -> Self {
        ChannelLifecycle {
            cfg,
            state: LifecycleState::Live,
            cooldown_ns: cfg.cooldown_base_ns,
            until_ns: 0,
            attempts: 0,
            snap: LifecycleSnapshot::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Cumulative counters plus the current state.
    pub fn snapshot(&self) -> LifecycleSnapshot {
        let mut s = self.snap;
        s.state = self.state;
        s
    }

    /// Active timing policy.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// Death evidence arrived (link-dead flag or liveness silence).
    /// From any up-phase this (re)enters the dead side of the machine;
    /// already-dead phases ignore it (evidence repeats every poll).
    pub fn on_dead(&mut self, _now_ns: u64) {
        match self.state {
            LifecycleState::Live | LifecycleState::Probing | LifecycleState::Rejoining => {
                self.state = LifecycleState::Dead;
            }
            LifecycleState::Dead | LifecycleState::Cooldown => {}
        }
    }

    /// Clock step: walk timed transitions and return the side effect
    /// the reactor owes the machine (at most one per call).
    pub fn advance(&mut self, now_ns: u64) -> LifecycleAction {
        match self.state {
            LifecycleState::Live => LifecycleAction::None,
            LifecycleState::Dead => {
                // Death → cooldown at the current (escalated) backoff.
                self.state = LifecycleState::Cooldown;
                self.until_ns = now_ns.saturating_add(self.cooldown_ns);
                self.snap.cooldowns += 1;
                LifecycleAction::None
            }
            LifecycleState::Cooldown => {
                if now_ns >= self.until_ns {
                    self.snap.rebind_attempts += 1;
                    LifecycleAction::Rebind
                } else {
                    LifecycleAction::None
                }
            }
            LifecycleState::Probing => {
                if now_ns >= self.until_ns {
                    // Rebind took but the path is still black: the round
                    // failed, escalate and go around again.
                    self.snap.probe_timeouts += 1;
                    self.fail_round(now_ns);
                }
                LifecycleAction::None
            }
            LifecycleState::Rejoining => {
                if now_ns >= self.until_ns {
                    // The grow handshake retransmits in the driver; the
                    // channel is already carrying probes and data, so
                    // declare it live and let the acks land late.
                    self.snap.rejoin_timeouts += 1;
                    self.become_live();
                }
                LifecycleAction::None
            }
        }
    }

    /// The reactor rebuilt the transport: wait [`LifecycleConfig::probe_timeout_ns`]
    /// for the liveness tracker's probe to be answered.
    pub fn rebind_ok(&mut self, now_ns: u64) {
        debug_assert_eq!(self.state, LifecycleState::Cooldown);
        self.state = LifecycleState::Probing;
        self.until_ns = now_ns.saturating_add(self.cfg.probe_timeout_ns);
    }

    /// The transport rebuild failed (port taken, socket error): count
    /// it and go back around the cooldown with escalated backoff.
    pub fn rebind_failed(&mut self, now_ns: u64) {
        debug_assert_eq!(self.state, LifecycleState::Cooldown);
        self.snap.rebind_failures += 1;
        self.fail_round(now_ns);
    }

    /// The failover driver saw the channel recover (first probe ack):
    /// the epoch'd membership grow is now in flight. Valid from any
    /// dead-side phase — an ack can sneak in before our own rebind when
    /// death came from silence rather than a broken socket.
    pub fn on_recovered(&mut self, now_ns: u64) {
        match self.state {
            LifecycleState::Dead | LifecycleState::Cooldown | LifecycleState::Probing => {
                self.state = LifecycleState::Rejoining;
                self.until_ns = now_ns.saturating_add(self.cfg.rejoin_timeout_ns);
            }
            LifecycleState::Live | LifecycleState::Rejoining => {}
        }
    }

    /// The membership grow fully acked: the cycle is complete.
    pub fn on_rejoin_complete(&mut self, _now_ns: u64) {
        if self.state == LifecycleState::Rejoining {
            self.become_live();
        }
    }

    fn become_live(&mut self) {
        self.state = LifecycleState::Live;
        self.snap.rejoins += 1;
        self.cooldown_ns = self.cfg.cooldown_base_ns;
        self.attempts = 0;
    }

    /// A round (rebind or probe wait) failed: escalate the backoff,
    /// honour the retry cap, and re-enter cooldown.
    fn fail_round(&mut self, now_ns: u64) {
        self.attempts += 1;
        self.cooldown_ns = self
            .cooldown_ns
            .saturating_mul(2)
            .min(self.cfg.cooldown_max_ns);
        if self.attempts >= self.cfg.retry_cap {
            // Cap reached: park at max cooldown and start a fresh
            // round-count. Never terminal — a channel that comes back
            // later must still be able to rejoin.
            self.snap.retries_exhausted += 1;
            self.attempts = 0;
            self.cooldown_ns = self.cfg.cooldown_max_ns;
        }
        self.state = LifecycleState::Cooldown;
        self.until_ns = now_ns.saturating_add(self.cooldown_ns);
        self.snap.cooldowns += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LifecycleConfig {
        LifecycleConfig {
            cooldown_base_ns: 100,
            cooldown_max_ns: 800,
            probe_timeout_ns: 400,
            rejoin_timeout_ns: 900,
            retry_cap: 3,
        }
    }

    #[test]
    fn happy_path_walks_the_whole_chain() {
        let mut lc = ChannelLifecycle::new(cfg());
        assert_eq!(lc.state(), LifecycleState::Live);
        lc.on_dead(0);
        assert_eq!(lc.state(), LifecycleState::Dead);
        assert_eq!(lc.advance(0), LifecycleAction::None);
        assert_eq!(lc.state(), LifecycleState::Cooldown);
        // Cooldown not yet elapsed.
        assert_eq!(lc.advance(99), LifecycleAction::None);
        assert_eq!(lc.advance(100), LifecycleAction::Rebind);
        lc.rebind_ok(100);
        assert_eq!(lc.state(), LifecycleState::Probing);
        lc.on_recovered(150);
        assert_eq!(lc.state(), LifecycleState::Rejoining);
        lc.on_rejoin_complete(200);
        assert_eq!(lc.state(), LifecycleState::Live);
        let s = lc.snapshot();
        assert_eq!(s.rejoins, 1);
        assert_eq!(s.cooldowns, 1);
        assert_eq!(s.rebind_attempts, 1);
        assert_eq!(s.rebind_failures, 0);
    }

    #[test]
    fn failed_rebinds_escalate_and_cap() {
        let mut lc = ChannelLifecycle::new(cfg());
        lc.on_dead(0);
        lc.advance(0); // dead → cooldown(100)
        let mut now = 0u64;
        let mut waits = Vec::new();
        for _ in 0..5 {
            // Jump straight past whatever cooldown is pending.
            let before = now;
            while lc.advance(now) != LifecycleAction::Rebind {
                now += 50;
            }
            waits.push(now - before);
            lc.rebind_failed(now);
        }
        // 100, then 200, 400, then cap-reset parks at 800, stays 800.
        assert_eq!(waits, vec![100, 200, 400, 800, 800]);
        let s = lc.snapshot();
        assert_eq!(s.rebind_failures, 5);
        assert_eq!(s.retries_exhausted, 1, "cap of 3 hit once in 5 rounds");
        assert_eq!(s.state, LifecycleState::Cooldown, "never terminal");
    }

    #[test]
    fn probe_timeout_returns_to_cooldown() {
        let mut lc = ChannelLifecycle::new(cfg());
        lc.on_dead(0);
        lc.advance(0);
        assert_eq!(lc.advance(100), LifecycleAction::Rebind);
        lc.rebind_ok(100);
        // Probe window is 400ns: still probing inside it...
        assert_eq!(lc.advance(499), LifecycleAction::None);
        assert_eq!(lc.state(), LifecycleState::Probing);
        // ...failed round at the deadline, with escalated cooldown.
        lc.advance(500);
        assert_eq!(lc.state(), LifecycleState::Cooldown);
        assert_eq!(lc.snapshot().probe_timeouts, 1);
        assert_eq!(lc.advance(699), LifecycleAction::None, "200ns cooldown now");
        assert_eq!(lc.advance(700), LifecycleAction::Rebind);
    }

    #[test]
    fn rejoin_timeout_goes_live_and_counts() {
        let mut lc = ChannelLifecycle::new(cfg());
        lc.on_dead(0);
        lc.advance(0);
        assert_eq!(lc.advance(100), LifecycleAction::Rebind);
        lc.rebind_ok(100);
        lc.on_recovered(200);
        assert_eq!(lc.advance(1_099), LifecycleAction::None);
        assert_eq!(lc.state(), LifecycleState::Rejoining);
        lc.advance(1_100); // 200 + 900 rejoin window
        assert_eq!(lc.state(), LifecycleState::Live);
        let s = lc.snapshot();
        assert_eq!(s.rejoin_timeouts, 1);
        assert_eq!(s.rejoins, 1, "a timed-out rejoin still completes the cycle");
    }

    #[test]
    fn recovery_can_skip_the_rebind() {
        // Silence-death: the socket never broke, an ack arrives while
        // still in cooldown.
        let mut lc = ChannelLifecycle::new(cfg());
        lc.on_dead(0);
        lc.advance(0);
        lc.on_recovered(50);
        assert_eq!(lc.state(), LifecycleState::Rejoining);
        lc.on_rejoin_complete(60);
        assert_eq!(lc.state(), LifecycleState::Live);
        assert_eq!(lc.snapshot().rebind_attempts, 0);
    }

    #[test]
    fn repeated_death_evidence_is_idempotent() {
        let mut lc = ChannelLifecycle::new(cfg());
        lc.on_dead(0);
        lc.advance(0);
        lc.on_dead(10); // evidence repeats every poll while dead
        lc.on_dead(20);
        assert_eq!(lc.state(), LifecycleState::Cooldown);
        assert_eq!(lc.snapshot().cooldowns, 1);
        // A fresh cycle resets the backoff after a completed rejoin.
        assert_eq!(lc.advance(100), LifecycleAction::Rebind);
        lc.rebind_ok(100);
        lc.on_recovered(110);
        lc.on_rejoin_complete(120);
        lc.on_dead(500);
        lc.advance(500);
        assert_eq!(
            lc.advance(600),
            LifecycleAction::Rebind,
            "cooldown restarts at base after a completed cycle"
        );
    }

    #[test]
    fn state_encoding_round_trips() {
        for s in [
            LifecycleState::Live,
            LifecycleState::Dead,
            LifecycleState::Cooldown,
            LifecycleState::Probing,
            LifecycleState::Rejoining,
        ] {
            assert_eq!(LifecycleState::from_u8(s.as_u8()), s);
        }
        assert_eq!(LifecycleState::from_u8(0xff), LifecycleState::Dead);
    }

    #[test]
    fn config_derives_from_probe_interval() {
        let c = LifecycleConfig::with_probe_interval(1_000_000);
        assert_eq!(c.cooldown_base_ns, 1_000_000);
        assert_eq!(c.cooldown_max_ns, 16_000_000);
        assert_eq!(c.probe_timeout_ns, 4_000_000);
        assert_eq!(c.rejoin_timeout_ns, 8_000_000);
        assert_eq!(c.retry_cap, 3);
    }
}
