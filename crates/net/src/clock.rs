//! Wall-clock time as [`SimTime`]: the adapter that lets every
//! timer-driven state machine built for the simulator — marker emission,
//! liveness keepalives, the failover driver, stall detection — run
//! unchanged over real sockets.
//!
//! The trick is that none of those components ever asks *what time it
//! is*; they are all handed a [`SimTime`] by their caller. So a real
//! deployment only needs a monotone origin-relative nanosecond count,
//! which is exactly what [`WallClock`] derives from
//! [`std::time::Instant`].

use std::time::Instant;

use stripe_netsim::SimTime;

/// A monotone wall clock reporting time as [`SimTime`] nanoseconds since
/// its creation.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Start the clock: this instant becomes [`SimTime::ZERO`].
    pub fn start() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`start`](Self::start), as a [`SimTime`].
    ///
    /// Saturates at `u64::MAX` nanoseconds (~584 years of uptime).
    pub fn now(&self) -> SimTime {
        let ns = self.origin.elapsed().as_nanos();
        SimTime::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_origin_relative() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        // Freshly started: well under a second has passed.
        assert!(a.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn elapsed_time_registers() {
        let clock = WallClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now().as_nanos() >= 1_000_000);
    }
}
