//! The kernel seam: batched datagram syscalls behind one portable API.
//!
//! [`BatchIo`] submits a whole run of frames to the kernel as a single
//! `sendmmsg(2)` / `recvmmsg(2)` call — the move that closes most of the
//! ~50x gap between the in-memory datapath and the PR-3 socket path,
//! where every packet paid one syscall each way. On top of that,
//! equal-size frame runs use **UDP GSO** (`UDP_SEGMENT`): up to 64
//! segments travel the kernel stack as *one* datagram and are split at
//! the very bottom — and with **UDP GRO** (`UDP_GRO`) enabled on the
//! receiving socket, a loopback peer gets them re-coalesced and pays one
//! traversal too. Syscall batching alone caps out at the kernel's
//! per-datagram processing cost (~1.6 µs on the bench host, a ceiling
//! sendmmsg cannot move); segmentation offload is what actually lifts
//! it. Mixed-size stretches fall back to plain `sendmmsg` within the
//! same call, and a kernel that rejects `UDP_SEGMENT` demotes the
//! instance to mmsg-only at runtime.
//!
//! The FFI surface is a handful of `extern "C"` declarations and four
//! `#[repr(C)]` structs, gated on `linux`/`gnu`; everywhere else (and
//! whenever the `STRIPE_NET_FALLBACK=1` environment variable forces it,
//! so CI can pin the portable path) the same API runs a per-frame
//! `send`/`recv` loop with byte-identical outcomes. Callers observe only
//! `(frames moved, syscalls spent)` — the mechanics are invisible, which
//! is what the differential proptests in `tests/mmsg_differential.rs`
//! check.
//!
//! This module also owns the other two pieces of kernel-adjacent glue
//! the datapath needs:
//!
//! - [`configure_buffers`]: `SO_SNDBUF`/`SO_RCVBUF` via `setsockopt`,
//!   with the *effective* sizes read back (Linux doubles the requested
//!   value for bookkeeping overhead).
//! - [`socket_drops_port`]: a `dropped_rcvbuf` estimate read from the
//!   socket's `drops` column in `/proc/net/udp` — the kernel-overflow
//!   losses that are otherwise invisible and surface only as §5 marker
//!   recoveries.

use std::io;
use std::net::UdpSocket;
use std::sync::OnceLock;

/// Default frames per `mmsghdr` batch — large enough to amortize the
/// syscall to noise, small enough to keep scratch arrays cache-resident.
pub const DEFAULT_BATCH: usize = 32;

/// The kernel's `UDP_MAX_SEGMENTS`: most segments one GSO send carries.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GSO_MAX_SEGMENTS: usize = 64;
/// Largest pre-segmentation datagram a GSO send may build (max UDP
/// payload); `gso_size * segments` must stay under this.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GSO_MAX_BYTES: usize = 65_507;
/// Shortest equal-size run worth a GSO send: even two segments halve the
/// kernel traversals, which dominate once syscalls are batched.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GSO_MIN_RUN: usize = 2;
/// GRO staging slot: one coalesced datagram is at most 65507 bytes, so
/// a 64 KiB slot can never truncate a train.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GRO_SLOT: usize = 1 << 16;
/// Byte distance between consecutive staging slots: slot size plus a
/// skew that keeps the kernel's per-train copies off a power-of-two
/// stride (which would land every train in the same cache sets).
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GRO_SLOT_STRIDE: usize = GRO_SLOT + 4096;
/// Coalesced trains pulled per `recvmmsg`; staging memory is
/// `GRO_RX_SLOTS * GRO_SLOT_STRIDE` per GRO-enabled socket. One slot
/// measured fastest on single-core hosts, where syscalls are cheap and
/// the extra staging footprint evicts hotter cache lines; raise it on
/// machines where the receive path is syscall-bound.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const GRO_RX_SLOTS: usize = 1;

/// True when `STRIPE_NET_FALLBACK=1` forces the portable per-frame path
/// even where the batched syscalls are compiled in. Read once.
pub fn fallback_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("STRIPE_NET_FALLBACK").is_ok_and(|v| v == "1"))
}

/// True when this build carries the `sendmmsg`/`recvmmsg` declarations.
pub const fn mmsg_compiled() -> bool {
    cfg!(all(target_os = "linux", target_env = "gnu"))
}

/// Outcome of one batched send: `sent` frames were handed to the kernel
/// in `syscalls` calls. `sent` short of the offered run means the kernel
/// refused the next frame — backpressure (`hard_error == false`, the
/// `WouldBlock` of the per-frame path) or a real socket failure on that
/// frame (`hard_error == true`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendReport {
    /// Frames accepted by the kernel.
    pub sent: usize,
    /// Syscalls spent (including the one that reported backpressure).
    pub syscalls: u64,
    /// The stop was a hard socket error, not backpressure.
    pub hard_error: bool,
    /// Raw OS errno of the hard error, when the OS supplied one — the
    /// channel's recovery logic tells `ECONNREFUSED` (transient ICMP
    /// echo) from `ENOBUFS` (back off) from `EMSGSIZE` (clamp MTU) from
    /// genuinely fatal failures by this value.
    pub errno: Option<i32>,
}

/// Outcome of one batched receive: `received` frames landed in the
/// caller's buffers over `syscalls` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvReport {
    /// Frames received.
    pub received: usize,
    /// Syscalls spent (including the one that found the queue empty).
    pub syscalls: u64,
}

/// Reusable scratch for batched sends/receives on one socket.
///
/// On `linux`/`gnu` with the fallback not forced, runs go to the kernel
/// as `mmsghdr` arrays (one frame per message, one iovec per frame);
/// otherwise the same calls loop per frame. The scratch vectors are
/// sized once and recycled forever — zero allocations per batch.
#[derive(Debug)]
pub struct BatchIo {
    cap: usize,
    batched: bool,
    /// Attempt GSO sends for equal-size runs. Starts with `batched`,
    /// demoted at runtime if the kernel rejects `UDP_SEGMENT`.
    gso: bool,
    /// The socket this instance reads has `UDP_GRO` enabled, so receives
    /// must go through the coalescing-aware splitter.
    gro: bool,
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    iovs: Vec<ffi::IoVec>,
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    hdrs: Vec<ffi::MMsgHdr>,
    /// One `UDP_SEGMENT` control block per planned send message.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    cmsgs: Vec<ffi::SegmentCmsg>,
    /// Frames covered by each planned send message (train lengths).
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    runs: Vec<usize>,
    /// GRO receive staging: [`GRO_RX_SLOTS`] slots of [`GRO_SLOT`] bytes
    /// each, so one `recvmmsg` pulls several coalesced trains at once.
    /// Unconsumed trains are just offsets into this buffer — `rx_trains`
    /// records `(bytes, segment size)` per filled slot, `rx_slot` /
    /// `left_off` cursor the next undelivered segment — so overflow
    /// never copies or allocates.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    staging: Vec<u8>,
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    rx_trains: Vec<(usize, usize)>,
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    rx_slot: usize,
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    left_off: usize,
}

// SAFETY: the raw pointers inside the scratch arrays are dangling
// between calls — each call rebuilds them from the borrowed frames
// before the syscall and never reads them afterwards. Moving the
// scratch across threads is therefore sound.
unsafe impl Send for BatchIo {}

impl BatchIo {
    /// Scratch for batches of up to `cap` frames. `force_fallback`
    /// pins the per-frame path for this instance regardless of platform
    /// (the process-wide `STRIPE_NET_FALLBACK=1` does the same).
    pub fn new(cap: usize, force_fallback: bool) -> Self {
        let cap = cap.max(1);
        let batched = mmsg_compiled() && !force_fallback && !fallback_forced();
        Self {
            cap,
            batched,
            gso: batched,
            gro: false,
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            iovs: Vec::with_capacity(cap),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            hdrs: Vec::with_capacity(cap),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            cmsgs: Vec::with_capacity(cap),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            runs: Vec::with_capacity(cap),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            staging: Vec::new(),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            rx_trains: Vec::with_capacity(GRO_RX_SLOTS),
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            rx_slot: 0,
            #[cfg(all(target_os = "linux", target_env = "gnu"))]
            left_off: 0,
        }
    }

    /// Whether this instance really batches (false on the portable path).
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Whether equal-size runs currently go out as GSO super-datagrams.
    pub fn gso_active(&self) -> bool {
        self.batched && self.gso
    }

    /// Permanently stop offering GSO trains on this socket — the
    /// `EMSGSIZE` recovery: once the path MTU shrinks below what probing
    /// accepted, super-datagrams are the first thing to start bouncing.
    pub fn demote_gso(&mut self) {
        self.gso = false;
    }

    /// Mark the socket this instance reads as `UDP_GRO`-enabled (see
    /// [`configure_offload`]). Receives then route through the
    /// coalescing-aware splitter; the staging buffer is sized here so
    /// the receive path never allocates.
    pub fn set_gro(&mut self, on: bool) {
        self.gro = self.batched && on;
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        if self.gro {
            // Per-slot control blocks reuse the send-side cmsg scratch,
            // whose capacity (`cap >= rx_slots`) already covers them.
            self.staging.resize(self.rx_slots() * GRO_SLOT_STRIDE, 0);
        }
    }

    /// Coalesced trains pulled per `recvmmsg` on a GRO socket.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn rx_slots(&self) -> usize {
        GRO_RX_SLOTS.min(self.cap)
    }

    /// Whether receives treat the socket as GRO-coalescing.
    pub fn gro(&self) -> bool {
        self.gro
    }

    /// Largest single `mmsghdr` batch submitted at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Send `frames` in order, stopping at the first frame the kernel
    /// refuses. Chunks longer than [`capacity`](Self::capacity) take one
    /// syscall per chunk.
    pub fn send_frames(&mut self, sock: &UdpSocket, frames: &[Vec<u8>]) -> SendReport {
        if frames.is_empty() {
            return SendReport::default();
        }
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        if self.batched {
            return self.send_mmsg(sock, frames);
        }
        self.send_per_frame(sock, frames)
    }

    /// Receive up to `bufs.len()` frames, writing frame `i` into
    /// `bufs[i]` and its length into `lens[i]`. Stops as soon as the
    /// socket queue is drained.
    pub fn recv_frames(
        &mut self,
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> RecvReport {
        if bufs.is_empty() {
            return RecvReport::default();
        }
        debug_assert!(lens.len() >= bufs.len(), "one length slot per buffer");
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        if self.gro {
            return self.recv_gro(sock, bufs, lens);
        }
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        if self.batched {
            return self.recv_mmsg(sock, bufs, lens);
        }
        self.recv_per_frame(sock, bufs, lens)
    }

    /// Receive a single frame into `buf`, returning `(frame length if
    /// any, syscalls spent)`. On a GRO socket a plain `recv` would hand
    /// back a whole coalesced train as one blob, so single-frame readers
    /// must come through here: the splitter returns one segment and
    /// stashes the rest for the next call (zero syscalls).
    pub fn recv_one(&mut self, sock: &UdpSocket, buf: &mut [u8]) -> (Option<usize>, u64) {
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        if self.gro {
            if let Some(k) = self.take_leftover(buf) {
                return (Some(k), 0);
            }
            if self.gro_fill_many(sock) == 0 {
                return (None, 1);
            }
            let k = self.take_leftover(buf).expect("fresh train has a segment");
            return (Some(k), 1);
        }
        match sock.recv(buf) {
            Ok(n) => (Some(n), 1),
            Err(_) => (None, 1),
        }
    }

    /// Copy the next unconsumed segment of the staged trains into `buf`,
    /// if one is left, advancing the slot cursor across train boundaries.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn take_leftover(&mut self, buf: &mut [u8]) -> Option<usize> {
        while self.rx_slot < self.rx_trains.len() {
            let (n, seg) = self.rx_trains[self.rx_slot];
            if n == 0 {
                // An empty datagram coalesces with nothing: one frame.
                self.rx_slot += 1;
                self.left_off = 0;
                return Some(0);
            }
            if self.left_off >= n {
                self.rx_slot += 1;
                self.left_off = 0;
                continue;
            }
            let base = self.rx_slot * GRO_SLOT_STRIDE;
            let end = (self.left_off + seg).min(n);
            let chunk = &self.staging[base + self.left_off..base + end];
            let k = chunk.len().min(buf.len());
            buf[..k].copy_from_slice(&chunk[..k]);
            self.left_off = end;
            return Some(k);
        }
        None
    }

    fn send_per_frame(&mut self, sock: &UdpSocket, frames: &[Vec<u8>]) -> SendReport {
        let mut rep = SendReport::default();
        for f in frames {
            rep.syscalls += 1;
            match sock.send(f) {
                Ok(_) => rep.sent += 1,
                Err(e) => {
                    rep.hard_error = e.kind() != io::ErrorKind::WouldBlock;
                    if rep.hard_error {
                        rep.errno = e.raw_os_error();
                    }
                    break;
                }
            }
        }
        rep
    }

    fn recv_per_frame(
        &mut self,
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> RecvReport {
        let mut rep = RecvReport::default();
        for (buf, len) in bufs.iter_mut().zip(lens.iter_mut()) {
            rep.syscalls += 1;
            match sock.recv(buf) {
                Ok(n) => {
                    *len = n;
                    rep.received += 1;
                }
                Err(_) => break,
            }
        }
        rep
    }

    /// How many leading frames of `rest` can ride one GSO send: a run of
    /// equal-length frames (capped by the kernel's segment and byte
    /// limits), optionally closed by one *shorter* trailing frame — the
    /// one short-tail segment GSO permits, which lets a marker ride its
    /// data burst's syscall.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn gso_run_len(rest: &[Vec<u8>]) -> usize {
        let l = rest[0].len();
        if l == 0 {
            return 1;
        }
        let cap = GSO_MAX_SEGMENTS.min(GSO_MAX_BYTES / l).max(1);
        let mut i = 1;
        while i < rest.len() && i < cap && rest[i].len() == l {
            i += 1;
        }
        if i < rest.len() && i < cap && !rest[i].is_empty() && rest[i].len() < l {
            i += 1;
        }
        i
    }

    /// Batched send: one `sendmmsg` per [`cap`](Self::capacity) planned
    /// *messages*, where each message is either a GSO train (an
    /// equal-size run plus optional shorter tail, carrying its own
    /// `UDP_SEGMENT` cmsg) or a single plain frame. Composing the two
    /// mechanisms is what keeps both costs amortized at once: the
    /// kernel's per-datagram stack traversal is paid per *train*, and
    /// the syscall is paid per *batch of trains*.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn send_mmsg(&mut self, sock: &UdpSocket, frames: &[Vec<u8>]) -> SendReport {
        use std::os::fd::AsRawFd;
        let mut rep = SendReport::default();
        while rep.sent < frames.len() {
            let rest = &frames[rep.sent..];
            // Plan messages first; build headers once the scratch
            // vectors have stopped growing (hdrs hold pointers into
            // iovs and cmsgs).
            self.iovs.clear();
            self.cmsgs.clear();
            self.runs.clear();
            let mut planned = 0;
            while planned < rest.len() && self.runs.len() < self.cap {
                let run = if self.gso {
                    Self::gso_run_len(&rest[planned..])
                } else {
                    1
                };
                for f in &rest[planned..planned + run] {
                    self.iovs.push(ffi::IoVec {
                        base: f.as_ptr() as *mut _,
                        len: f.len(),
                    });
                }
                self.cmsgs
                    .push(ffi::SegmentCmsg::new(rest[planned].len() as u16));
                self.runs.push(run);
                planned += run;
            }
            self.hdrs.clear();
            let iov_base = self.iovs.as_mut_ptr();
            let cmsg_base = self.cmsgs.as_mut_ptr();
            let mut iov_off = 0;
            for (k, &run) in self.runs.iter().enumerate() {
                let gso_train = run >= GSO_MIN_RUN;
                self.hdrs.push(ffi::MMsgHdr {
                    hdr: ffi::MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        // SAFETY: in-bounds offsets into scratch vectors
                        // that are fully built and no longer growing.
                        iov: unsafe { iov_base.add(iov_off) },
                        iovlen: run,
                        control: if gso_train {
                            // SAFETY: as above.
                            unsafe { cmsg_base.add(k) as *mut _ }
                        } else {
                            std::ptr::null_mut()
                        },
                        controllen: if gso_train {
                            std::mem::size_of::<ffi::SegmentCmsg>()
                        } else {
                            0
                        },
                        flags: 0,
                    },
                    len: 0,
                });
                iov_off += run;
            }
            rep.syscalls += 1;
            // SAFETY: hdrs/iovs/cmsgs point at this call's frames and
            // scratch, all outliving the syscall; vlen matches the
            // populated header count.
            let ret = unsafe {
                ffi::sendmmsg(
                    sock.as_raw_fd(),
                    self.hdrs.as_mut_ptr(),
                    self.hdrs.len() as u32,
                    0,
                )
            };
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::WouldBlock {
                    break;
                }
                // EINVAL / EMSGSIZE / ENOPROTOOPT / EOPNOTSUPP while GSO
                // trains were in the plan: this kernel (or this path)
                // won't do UDP_SEGMENT — demote to plain messages and
                // retry the same frames. Anything else is a hard error.
                let gso_rejected =
                    matches!(e.raw_os_error(), Some(22) | Some(90) | Some(92) | Some(95));
                if gso_rejected && self.gso && self.runs.iter().any(|&r| r >= GSO_MIN_RUN) {
                    self.gso = false;
                    continue;
                }
                rep.hard_error = true;
                rep.errno = e.raw_os_error();
                break;
            }
            let k = ret as usize;
            rep.sent += self.runs[..k].iter().sum::<usize>();
            if k < self.hdrs.len() {
                break; // kernel refused mid-batch: backpressure
            }
        }
        rep
    }

    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn recv_mmsg(
        &mut self,
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> RecvReport {
        use std::os::fd::AsRawFd;
        let mut rep = RecvReport::default();
        while rep.received < bufs.len() {
            let lo = rep.received;
            let hi = (lo + self.cap).min(bufs.len());
            self.iovs.clear();
            self.hdrs.clear();
            for b in bufs[lo..hi].iter_mut() {
                self.iovs.push(ffi::IoVec {
                    base: b.as_mut_ptr() as *mut _,
                    len: b.len(),
                });
            }
            for iov in self.iovs.iter_mut() {
                self.hdrs.push(ffi::MMsgHdr {
                    hdr: ffi::MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        iov,
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                });
            }
            let want = hi - lo;
            rep.syscalls += 1;
            // SAFETY: hdrs/iovs point into `bufs[lo..hi]`, alive across
            // the call; the kernel writes at most iov_len per message.
            let ret = unsafe {
                ffi::recvmmsg(
                    sock.as_raw_fd(),
                    self.hdrs.as_mut_ptr(),
                    want as u32,
                    ffi::MSG_DONTWAIT,
                    std::ptr::null_mut(),
                )
            };
            if ret <= 0 {
                break; // drained (EWOULDBLOCK) or transient error
            }
            let k = ret as usize;
            for i in 0..k {
                lens[lo + i] = self.hdrs[i].len as usize;
            }
            rep.received += k;
            if k < want {
                break; // queue drained mid-batch
            }
        }
        rep
    }

    /// One non-blocking `recvmmsg` pulling up to [`Self::rx_slots`]
    /// coalesced trains into the staging slots at once, each message
    /// with its own `UDP_GRO` control block. Records `(bytes, segment
    /// size)` per train in `rx_trains` and resets the consumption
    /// cursor; returns how many trains landed (0: nothing ready).
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn gro_fill_many(&mut self, sock: &UdpSocket) -> usize {
        use std::os::fd::AsRawFd;
        let slots = self.rx_slots();
        self.rx_trains.clear();
        self.rx_slot = 0;
        self.left_off = 0;
        self.iovs.clear();
        self.hdrs.clear();
        self.cmsgs.clear();
        self.cmsgs.resize(slots, ffi::SegmentCmsg::new(0));
        let staging_base = self.staging.as_mut_ptr();
        let cmsg_base = self.cmsgs.as_mut_ptr();
        for s in 0..slots {
            self.iovs.push(ffi::IoVec {
                // SAFETY: slot `s` is an in-bounds GRO_SLOT-sized window
                // of the staging buffer.
                base: unsafe { staging_base.add(s * GRO_SLOT_STRIDE) } as *mut _,
                len: GRO_SLOT,
            });
        }
        let iov_base = self.iovs.as_mut_ptr();
        for s in 0..slots {
            self.hdrs.push(ffi::MMsgHdr {
                hdr: ffi::MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    // SAFETY: in-bounds offsets into scratch vectors that
                    // are fully built and no longer growing.
                    iov: unsafe { iov_base.add(s) },
                    iovlen: 1,
                    control: unsafe { cmsg_base.add(s) as *mut _ },
                    controllen: std::mem::size_of::<ffi::SegmentCmsg>(),
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: hdrs/iovs/cmsgs point at live scratch across the call;
        // the kernel writes per-message byte and control lengths back.
        let ret = unsafe {
            ffi::recvmmsg(
                sock.as_raw_fd(),
                self.hdrs.as_mut_ptr(),
                slots as u32,
                ffi::MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if ret <= 0 {
            return 0; // WouldBlock or transient error: nothing ready
        }
        let got = ret as usize;
        for m in 0..got {
            let n = self.hdrs[m].len as usize;
            // SAFETY: reading the control block the kernel just wrote,
            // within its fixed 24-byte footprint.
            let ctrl = unsafe {
                std::slice::from_raw_parts(
                    cmsg_base.add(m) as *const u8,
                    std::mem::size_of::<ffi::SegmentCmsg>(),
                )
            };
            let seg = ffi::gro_segment_size(ctrl, self.hdrs[m].hdr.controllen)
                .map(|s| s as usize)
                .filter(|&s| s > 0)
                .unwrap_or_else(|| n.max(1));
            self.rx_trains.push((n, seg));
        }
        got
    }

    /// GRO-aware batched receive: pull several coalesced trains per
    /// `recvmmsg`, then split each back into per-frame buffers, in
    /// order. Trains that overflow the caller's array stay parked in
    /// the staging slots (offsets only, no copies) and are delivered
    /// first next time — no frame is ever dropped by the splitter.
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    fn recv_gro(
        &mut self,
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> RecvReport {
        let mut rep = RecvReport::default();
        while rep.received < bufs.len() {
            if let Some(k) = self.take_leftover(&mut bufs[rep.received]) {
                lens[rep.received] = k;
                rep.received += 1;
                continue;
            }
            rep.syscalls += 1;
            if self.gro_fill_many(sock) == 0 {
                break;
            }
        }
        rep
    }
}

/// Enable `UDP_GRO` on a socket so the kernel hands receives over as
/// coalesced segment trains (one traversal for up to 64 frames). Returns
/// whether the option stuck; pass the result to [`BatchIo::set_gro`] so
/// the receive path splits the trains back apart. No-op `false` where
/// the shim isn't compiled.
pub fn configure_offload(sock: &UdpSocket) -> bool {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::os::fd::AsRawFd;
        ffi::set_udp_gro(sock.as_raw_fd())
    }
    #[cfg(not(all(target_os = "linux", target_env = "gnu")))]
    {
        let _ = sock;
        false
    }
}

/// Apply `SO_SNDBUF`/`SO_RCVBUF` (when requested) and return the
/// effective `(sndbuf, rcvbuf)` the kernel settled on. On platforms
/// without the shim this is a no-op reporting `(0, 0)` — "unknown".
pub fn configure_buffers(
    sock: &UdpSocket,
    sndbuf: Option<usize>,
    rcvbuf: Option<usize>,
) -> (u64, u64) {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::os::fd::AsRawFd;
        let fd = sock.as_raw_fd();
        if let Some(bytes) = sndbuf {
            ffi::set_buf(fd, ffi::SO_SNDBUF, bytes);
        }
        if let Some(bytes) = rcvbuf {
            ffi::set_buf(fd, ffi::SO_RCVBUF, bytes);
        }
        (
            ffi::get_buf(fd, ffi::SO_SNDBUF),
            ffi::get_buf(fd, ffi::SO_RCVBUF),
        )
    }
    #[cfg(not(all(target_os = "linux", target_env = "gnu")))]
    {
        let _ = (sock, sndbuf, rcvbuf);
        (0, 0)
    }
}

/// Estimate of datagrams the kernel dropped on this socket's receive
/// buffer (`sk_drops`), read from the `drops` column of `/proc/net/udp`
/// for the row bound to `port`. Returns 0 when the row (or the proc
/// filesystem) is unavailable — an *estimate*, never a hard counter.
pub fn socket_drops_port(port: u16) -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(table) = std::fs::read_to_string("/proc/net/udp") else {
            return 0;
        };
        let suffix = format!(":{port:04X}");
        for line in table.lines().skip(1) {
            let mut fields = line.split_whitespace();
            let Some(local) = fields.nth(1) else { continue };
            if !local.ends_with(&suffix) {
                continue;
            }
            if let Some(drops) = fields.last() {
                return drops.parse().unwrap_or(0);
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = port;
        0
    }
}

#[cfg(all(target_os = "linux", target_env = "gnu"))]
mod ffi {
    //! Minimal glibc/x86-64 declarations for the two batched syscalls
    //! plus `setsockopt`/`getsockopt`. `#[repr(C)]` with these field
    //! types reproduces glibc's struct layout (including the implicit
    //! padding after `namelen` and `flags`) on every 64-bit gnu target.

    use std::os::raw::{c_int, c_uint, c_void};

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct IoVec {
        pub base: *mut c_void,
        pub len: usize,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct MsgHdr {
        pub name: *mut c_void,
        pub namelen: c_uint,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut c_void,
        pub controllen: usize,
        pub flags: c_int,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: c_uint,
    }

    pub const MSG_DONTWAIT: c_int = 0x40;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_SNDBUF: c_int = 7;
    pub const SO_RCVBUF: c_int = 8;
    pub const SOL_UDP: c_int = 17;
    pub const UDP_SEGMENT: c_int = 103;
    pub const UDP_GRO: c_int = 104;

    /// `cmsghdr` on 64-bit gnu targets (`cmsg_len` is `size_t` there).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct CmsgHdr {
        pub len: usize,
        pub level: c_int,
        pub ty: c_int,
    }

    /// A complete control block carrying exactly one `UDP_SEGMENT`
    /// cmsg: header, u16 segment size, padding out to `CMSG_SPACE(2)`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct SegmentCmsg {
        hdr: CmsgHdr,
        data: [u8; 8],
    }

    impl SegmentCmsg {
        pub fn new(gso_size: u16) -> Self {
            let mut data = [0u8; 8];
            data[..2].copy_from_slice(&gso_size.to_ne_bytes());
            Self {
                hdr: CmsgHdr {
                    // CMSG_LEN(2): header plus payload, before padding.
                    len: std::mem::size_of::<CmsgHdr>() + 2,
                    level: SOL_UDP,
                    ty: UDP_SEGMENT,
                },
                data,
            }
        }
    }

    /// Segment size from the first cmsg of a receive, when it is the
    /// `UDP_GRO` annotation the kernel attaches to coalesced trains.
    pub fn gro_segment_size(ctrl: &[u8], controllen: usize) -> Option<u16> {
        if controllen < std::mem::size_of::<CmsgHdr>() + 2 || ctrl.len() < controllen {
            return None;
        }
        // SAFETY: bounds checked above; the buffer holds kernel-written
        // cmsg data starting with a CmsgHdr.
        unsafe {
            let cm = ctrl.as_ptr() as *const CmsgHdr;
            if (*cm).level == SOL_UDP && (*cm).ty == UDP_GRO {
                let data = ctrl.as_ptr().add(std::mem::size_of::<CmsgHdr>());
                Some((data as *const u16).read_unaligned())
            } else {
                None
            }
        }
    }

    pub fn set_udp_gro(fd: c_int) -> bool {
        let one: c_int = 1;
        // SAFETY: optval points at a live c_int of the stated length.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_UDP,
                UDP_GRO,
                &one as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        rc == 0
    }

    extern "C" {
        pub fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn recvmmsg(
            fd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: c_uint,
        ) -> c_int;
        fn getsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *mut c_void,
            optlen: *mut c_uint,
        ) -> c_int;
    }

    pub fn set_buf(fd: c_int, opt: c_int, bytes: usize) {
        let val = bytes.min(i32::MAX as usize) as c_int;
        // SAFETY: optval points at a live c_int of the stated length.
        unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &val as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as c_uint,
            );
        }
    }

    pub fn get_buf(fd: c_int, opt: c_int) -> u64 {
        let mut val: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as c_uint;
        // SAFETY: optval points at a live c_int; len is in-out.
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &mut val as *mut c_int as *mut c_void,
                &mut len,
            )
        };
        if rc == 0 {
            val.max(0) as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let b = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn roundtrip(batched_tx: bool, batched_rx: bool) {
        let (a, b) = pair();
        let mut tx = BatchIo::new(4, !batched_tx);
        let mut rx = BatchIo::new(4, !batched_rx);
        // 10 frames through a cap-4 batcher: three chunks.
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 3 + i as usize]).collect();
        let rep = tx.send_frames(&a, &frames);
        assert_eq!(rep.sent, 10);
        assert!(!rep.hard_error);
        if tx.batched() {
            assert_eq!(rep.syscalls, 3);
        } else {
            assert_eq!(rep.syscalls, 10);
        }
        let mut bufs: Vec<Vec<u8>> = (0..10).map(|_| vec![0u8; 64]).collect();
        let mut lens = vec![0usize; 10];
        let mut got = 0;
        for _ in 0..1000 {
            let rep = rx.recv_frames(&b, &mut bufs[got..], &mut lens[got..]);
            got += rep.received;
            if got == 10 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got, 10, "all frames must cross loopback");
        for (i, (buf, &len)) in bufs.iter().zip(&lens).enumerate() {
            assert_eq!(&buf[..len], &frames[i][..], "frame {i}");
        }
    }

    #[test]
    fn batched_roundtrip_when_available() {
        roundtrip(true, true);
    }

    #[test]
    fn fallback_roundtrip() {
        roundtrip(false, false);
    }

    #[test]
    fn mixed_paths_interoperate() {
        roundtrip(true, false);
        roundtrip(false, true);
    }

    #[test]
    fn forced_fallback_never_batches() {
        let io = BatchIo::new(8, true);
        assert!(!io.batched());
    }

    #[test]
    fn empty_run_is_free() {
        let (a, _b) = pair();
        let mut io = BatchIo::new(4, false);
        let rep = io.send_frames(&a, &[]);
        assert_eq!(rep, SendReport::default());
    }

    #[test]
    fn effective_buffer_sizes_reported_on_linux() {
        let (a, _b) = pair();
        let (snd, rcv) = configure_buffers(&a, Some(1 << 16), Some(1 << 16));
        if mmsg_compiled() {
            // Linux doubles the request; either way it's at least as big.
            assert!(snd >= 1 << 16, "sndbuf {snd}");
            assert!(rcv >= 1 << 16, "rcvbuf {rcv}");
        } else {
            assert_eq!((snd, rcv), (0, 0));
        }
    }

    #[test]
    fn socket_drops_estimate_is_zero_for_quiet_socket() {
        let (a, _b) = pair();
        let port = a.local_addr().unwrap().port();
        assert_eq!(socket_drops_port(port), 0);
    }

    /// Receive `want` frames through `rx`, polling briefly for loopback
    /// scheduling lag; buffers are generously oversized so GRO/GSO
    /// length handling is what's under test.
    fn recv_all(rx: &mut BatchIo, sock: &UdpSocket, want: usize) -> (Vec<Vec<u8>>, Vec<usize>) {
        let mut bufs: Vec<Vec<u8>> = (0..want).map(|_| vec![0u8; 4096]).collect();
        let mut lens = vec![0usize; want];
        let mut got = 0;
        for _ in 0..1000 {
            let rep = rx.recv_frames(sock, &mut bufs[got..], &mut lens[got..]);
            got += rep.received;
            if got == want {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got, want, "all frames must cross loopback");
        (bufs, lens)
    }

    #[test]
    fn gso_run_roundtrips_through_gro() {
        let (a, b) = pair();
        let gro_on = configure_offload(&b);
        let mut tx = BatchIo::new(8, false);
        let mut rx = BatchIo::new(8, false);
        rx.set_gro(gro_on);
        let frames: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; 64]).collect();
        let rep = tx.send_frames(&a, &frames);
        assert_eq!(rep.sent, 32);
        assert!(!rep.hard_error);
        if tx.gso_active() {
            assert_eq!(rep.syscalls, 1, "one equal-size run, one GSO send");
        }
        let (bufs, lens) = recv_all(&mut rx, &b, 32);
        for (i, (buf, &len)) in bufs.iter().zip(&lens).enumerate() {
            assert_eq!(&buf[..len], &frames[i][..], "frame {i}");
        }
    }

    #[test]
    fn gro_preserves_order_across_mixed_sizes() {
        let (a, b) = pair();
        let gro_on = configure_offload(&b);
        let mut tx = BatchIo::new(8, false);
        let mut rx = BatchIo::new(8, false);
        rx.set_gro(gro_on);
        // Data runs closed by shorter marker-like tails, then a lone
        // larger frame — the §3.5 burst shape.
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for round in 0..3u8 {
            for i in 0..5u8 {
                frames.push(vec![round * 16 + i; 600]);
            }
            frames.push(vec![0xee; 40 + round as usize]);
        }
        frames.push(vec![0x7f; 900]);
        let rep = tx.send_frames(&a, &frames);
        assert_eq!(rep.sent, frames.len());
        let (bufs, lens) = recv_all(&mut rx, &b, frames.len());
        for (i, (buf, &len)) in bufs.iter().zip(&lens).enumerate() {
            assert_eq!(&buf[..len], &frames[i][..], "frame {i}");
        }
    }

    #[test]
    fn recv_one_splits_coalesced_trains() {
        let (a, b) = pair();
        let gro_on = configure_offload(&b);
        let mut tx = BatchIo::new(8, false);
        let mut rx = BatchIo::new(8, false);
        rx.set_gro(gro_on);
        let frames: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 100]).collect();
        let rep = tx.send_frames(&a, &frames);
        assert_eq!(rep.sent, 8);
        let mut buf = vec![0u8; 4096];
        let mut syscalls = 0u64;
        for (i, frame) in frames.iter().enumerate() {
            let n = loop {
                let (got, calls) = rx.recv_one(&b, &mut buf);
                syscalls += calls;
                if let Some(n) = got {
                    break n;
                }
                std::thread::yield_now();
            };
            assert_eq!(&buf[..n], &frame[..], "frame {i}");
        }
        if tx.gso_active() && rx.gro() {
            // The whole train crossed as one datagram: later frames came
            // from the stash, not the kernel.
            assert!(syscalls < 8, "stash served repeat reads ({syscalls})");
        }
    }

    #[test]
    fn empty_datagram_is_one_empty_frame() {
        let (a, b) = pair();
        let gro_on = configure_offload(&b);
        let mut tx = BatchIo::new(4, false);
        let mut rx = BatchIo::new(4, false);
        rx.set_gro(gro_on);
        let rep = tx.send_frames(&a, &[Vec::new()]);
        assert_eq!(rep.sent, 1);
        let (_bufs, lens) = recv_all(&mut rx, &b, 1);
        assert_eq!(lens[0], 0);
    }
}
