//! The multi-flow receive side: one socket sweep demultiplexing
//! flow-tagged frames into per-flow resequencers.
//!
//! [`FlowDemux`] is the receive-side twin of
//! [`StripeServer`](crate::server::StripeServer). It owns the N links
//! and a slab of per-flow replicas — each an independent
//! [`StripedSink`] whose scheduler is a fresh clone of the shared
//! prototype, exactly as the sender clones its own prototype per flow.
//! Flow lookup on the hot path is one slab index: O(1) per frame.
//!
//! Replicas are created *lazily*, on the first frame naming a flow id
//! (data or marker — both carry the varint tag). At creation the demux
//! applies the last announced membership mask one round ahead, the same
//! rule [`StripeServer::open_flow`](crate::server::StripeServer::open_flow)
//! uses, so both fresh simulations start in lockstep. Population is
//! bounded by [`max_flows`](FlowDemuxBuilder::max_flows); frames naming
//! flows past the cap are counted `dropped_admission` and discarded.
//!
//! Global control (probes, membership, quantum updates) arrives as
//! untagged version-1 frames and is handled once at the demux — applied
//! to *every* replica — so the failover plane stays flow-agnostic:
//! an epoch change is one announcement, not one per flow.
//!
//! Buffers cycle through one shared [`BufPool`] for all flows; data
//! payloads travel as zero-copy [`PooledBuf`] views and come back via
//! [`recycle`](FlowDemux::recycle). Steady state allocates nothing.

use stripe_core::control::Control;
use stripe_core::receiver::{Arrival, ReceiverSnapshot, RxBatch};
use stripe_core::sched::CausalScheduler;
use stripe_core::types::ChannelId;
use stripe_link::DatagramLink;
use stripe_netsim::SimTime;
use stripe_transport::StripedSink;

use crate::frame::{self, Frame};
use crate::pool::{BufPool, PooledBuf};
use crate::server::FlowId;

/// Demux-wide receive counters (per-flow resequencer counters live in
/// each flow's [`ReceiverSnapshot`], see [`FlowDemux::flow_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowDemuxSnapshot {
    /// Frames received across all channels and flows.
    pub frames: u64,
    /// Data frames routed into some flow's resequencer.
    pub data_frames: u64,
    /// Control frames (markers included) decoded.
    pub control_frames: u64,
    /// Frames that failed to decode (bad magic, version, kind, varint,
    /// or control body).
    pub dropped_malformed: u64,
    /// Summed data frames whose CRC-8 trailer did not match.
    pub dropped_corrupt: u64,
    /// Frames naming a flow the demux refused to create (population at
    /// [`max_flows`](FlowDemuxBuilder::max_flows)).
    pub dropped_admission: u64,
    /// Flow replicas currently instantiated.
    pub flows_active: u64,
    /// Control replies transmitted on the reverse path.
    pub replies_sent: u64,
    /// Control replies that could not be transmitted (backpressure).
    pub replies_lost: u64,
    /// §5 flushes performed in response to sender reset requests: every
    /// replica reinitialized, remembered mask/quanta forgotten.
    pub resets: u64,
    /// Desync alerts escalated to the sender (armed detector only).
    pub desync_alerts_sent: u64,
}

/// Builder for [`FlowDemux`] — same vocabulary as the other builders:
/// `scheduler` / `links` / capacity knobs.
#[derive(Debug)]
pub struct FlowDemuxBuilder<S: CausalScheduler, L: DatagramLink> {
    proto: Option<S>,
    links: Vec<L>,
    cap_per_channel: usize,
    pool_initial: usize,
    stall_timeout_ns: Option<u64>,
    max_flows: usize,
    incarnation: Option<u64>,
    desync: Option<stripe_core::reset::DesyncDetector>,
}

impl<S: CausalScheduler, L: DatagramLink> Default for FlowDemuxBuilder<S, L> {
    fn default() -> Self {
        Self {
            proto: None,
            links: Vec::new(),
            cap_per_channel: 1 << 14,
            pool_initial: 64,
            stall_timeout_ns: None,
            max_flows: 1 << 16,
            incarnation: None,
            desync: None,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> FlowDemuxBuilder<S, L> {
    /// The *prototype* simulation scheduler: every flow replica gets an
    /// identically configured fresh clone — matching the sender's
    /// per-flow clones. Required.
    pub fn scheduler(mut self, proto: S) -> Self {
        self.proto = Some(proto);
        self
    }

    /// The member links, one per scheduler channel. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Per-channel resequencer buffer depth, per flow. Defaults to
    /// 16384 (rings grow lazily, so idle flows cost almost nothing).
    pub fn capacity_per_channel(mut self, cap: usize) -> Self {
        self.cap_per_channel = cap;
        self
    }

    /// Receive buffers to pre-allocate in the shared pool. Defaults
    /// to 64.
    pub fn pool_buffers(mut self, n: usize) -> Self {
        self.pool_initial = n;
        self
    }

    /// Arm each flow's head-of-line stall detector (see
    /// [`stripe_core::receiver::LogicalReceiver::set_stall_timeout`]).
    pub fn stall_timeout_ns(mut self, timeout_ns: u64) -> Self {
        self.stall_timeout_ns = Some(timeout_ns);
        self
    }

    /// Cap on instantiated flow replicas; frames naming flows past it
    /// are dropped (`dropped_admission`). Defaults to 65536.
    pub fn max_flows(mut self, n: usize) -> Self {
        self.max_flows = n;
        self
    }

    /// Pin the incarnation nonce this endpoint reports in probe acks.
    /// Defaults to a fresh [`fresh_incarnation`] value, so a sender
    /// comparing acks across a process restart sees the change and
    /// drives the §5 reset.
    ///
    /// [`fresh_incarnation`]: stripe_core::reset::fresh_incarnation
    pub fn incarnation(mut self, incarnation: u64) -> Self {
        self.incarnation = Some(incarnation);
        self
    }

    /// Arm the self-stabilization monitor: each sweep samples the total
    /// buffered-arrival backlog into `detector`, and a trip (sustained
    /// backlog growth — the §5 "silent state corruption" symptom on an
    /// opaque-payload path) floods a
    /// [`Control::DesyncAlert`] to the sender on every channel.
    pub fn desync_detector(mut self, detector: stripe_core::reset::DesyncDetector) -> Self {
        self.desync = Some(detector);
        self
    }

    /// Assemble the demux with no flows instantiated. Pool buffers are
    /// sized to the largest link MTU.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied or the link count differs
    /// from the scheduler's channel count.
    pub fn build(self) -> FlowDemux<S, L> {
        let proto = self.proto.expect("FlowDemuxBuilder needs a scheduler");
        assert_eq!(
            self.links.len(),
            proto.channels(),
            "one link per scheduler channel"
        );
        let buf_len = self
            .links
            .iter()
            .map(|l| l.mtu())
            .max()
            .expect("non-empty links");
        let channels = self.links.len();
        FlowDemux {
            proto,
            links: self.links,
            pool: BufPool::new(buf_len, self.pool_initial),
            cap_per_channel: self.cap_per_channel,
            stall_timeout_ns: self.stall_timeout_ns,
            max_flows: self.max_flows,
            flows: Vec::new(),
            flow_pool: Vec::new(),
            last_mask: None,
            last_quanta: None,
            membership: stripe_core::membership::MembershipResponder::new(),
            retune: stripe_core::retune::RetuneResponder::new(),
            reset_resp: stripe_core::reset::ResetResponder::new(),
            incarnation: self
                .incarnation
                .unwrap_or_else(stripe_core::reset::fresh_incarnation),
            desync: self.desync,
            desync_tick: 0,
            ctl_buf: Vec::new(),
            recv_bufs: Vec::new(),
            recv_lens: Vec::new(),
            stats: FlowDemuxSnapshot::default(),
            malformed_by_channel: vec![0; channels],
            corrupt_by_channel: vec![0; channels],
        }
    }
}

/// Per-flow replica: the resequencer behind its sink.
#[derive(Debug)]
struct RxFlow<S: CausalScheduler> {
    sink: StripedSink<S, PooledBuf>,
}

/// Flow-aware physical reception over real sockets. See the module docs.
#[derive(Debug)]
pub struct FlowDemux<S: CausalScheduler, L: DatagramLink> {
    /// Prototype scheduler, cloned per flow replica.
    proto: S,
    links: Vec<L>,
    pool: BufPool,
    cap_per_channel: usize,
    stall_timeout_ns: Option<u64>,
    max_flows: usize,
    /// The flow slab: O(1) lookup by flow id, `None` in untouched slots.
    flows: Vec<Option<RxFlow<S>>>,
    /// Closed flows' replicas, reset and reused by the next
    /// instantiation — the receive half of the sender's flow pool, so
    /// open/close churn cycles replicas without touching the allocator.
    flow_pool: Vec<RxFlow<S>>,
    /// Last applied membership mask, replayed onto replicas created
    /// after an epoch change (mirrors the sender's `open_flow` rule).
    last_mask: Option<Vec<bool>>,
    /// Last applied quanta, replayed onto replicas created after a live
    /// retune (mirrors the sender's `open_flow` rule).
    last_quanta: Option<Vec<i64>>,
    /// Demux-level membership responder: one epoch, all flows.
    membership: stripe_core::membership::MembershipResponder,
    /// Demux-level retune responder: one epoch, all flows.
    retune: stripe_core::retune::RetuneResponder,
    /// Demux-level §5 reset responder: one epoch, all flows. Survives
    /// the flush it gates (a retransmitted request must ack, not
    /// re-flush).
    reset_resp: stripe_core::reset::ResetResponder,
    /// Reported in every probe ack; a restart produces a fresh one.
    incarnation: u64,
    /// The armed self-stabilization monitor, if any.
    desync: Option<stripe_core::reset::DesyncDetector>,
    /// Monotone sweep counter feeding the detector's window clock.
    desync_tick: u64,
    ctl_buf: Vec<u8>,
    recv_bufs: Vec<Vec<u8>>,
    recv_lens: Vec<usize>,
    stats: FlowDemuxSnapshot,
    /// Per-channel undecodable-frame counts.
    malformed_by_channel: Vec<u64>,
    /// Per-channel checksum-discard counts.
    corrupt_by_channel: Vec<u64>,
}

impl<S: CausalScheduler + Clone, L: DatagramLink> FlowDemux<S, L> {
    /// Instantiate flow `id`'s replica now if absent (it is normally
    /// created lazily by the first tagged frame). Returns `false` when
    /// the population cap refuses it.
    pub fn touch_flow(&mut self, id: FlowId) -> bool {
        self.ensure_flow(id)
    }

    fn ensure_flow(&mut self, id: FlowId) -> bool {
        let idx = id as usize;
        if idx < self.flows.len() && self.flows[idx].is_some() {
            return true;
        }
        if self.stats.flows_active as usize >= self.max_flows {
            return false;
        }
        if self.flows.len() <= idx {
            self.flows.resize_with(idx + 1, || None);
        }
        // Reuse a closed flow's replica when one is pooled (it was reset
        // at close, so it is indistinguishable from a fresh build).
        let mut sink = match self.flow_pool.pop() {
            Some(f) => f.sink,
            None => {
                let mut builder = StripedSink::builder()
                    .scheduler(self.proto.clone())
                    .capacity_per_channel(self.cap_per_channel);
                if let Some(t) = self.stall_timeout_ns {
                    builder = builder.stall_timeout_ns(t);
                }
                builder.build()
            }
        };
        if let Some(mask) = &self.last_mask {
            // Same rule as the sender's open_flow: a flow born after an
            // epoch change schedules the current mask one round ahead of
            // its fresh scheduler, keeping both simulations in lockstep.
            let eff = sink.receiver().scheduler().round() + 1;
            sink.receiver_mut().apply_membership(eff, mask);
        }
        if let Some(quanta) = &self.last_quanta {
            // Same replay rule for quanta after a live retune.
            let eff = sink.receiver().scheduler().round() + 1;
            sink.receiver_mut().schedule_quanta(eff, quanta);
        }
        self.flows[idx] = Some(RxFlow { sink });
        self.stats.flows_active += 1;
        true
    }

    /// One readiness pass at `now`: drain every channel's socket in
    /// batches (the `recvmmsg` seam), route each frame to its flow,
    /// answer global control on the reverse path. Returns the number of
    /// frames received.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let _ = now; // reserved for receive-timestamp plumbing
        while self.recv_bufs.len() < Self::RECV_RUN {
            self.recv_bufs.push(self.pool.take());
            self.recv_lens.push(0);
        }
        let mut received = 0;
        for c in 0..self.links.len() {
            loop {
                let got = self.links[c].recv_run(&mut self.recv_bufs, &mut self.recv_lens);
                for i in 0..got {
                    let buf = std::mem::replace(&mut self.recv_bufs[i], self.pool.take());
                    let n = self.recv_lens[i];
                    received += 1;
                    self.stats.frames += 1;
                    self.route_frame(c, buf, n);
                }
                if got < Self::RECV_RUN {
                    break;
                }
            }
        }
        self.sample_desync();
        received
    }

    /// Feed the armed desync detector one sweep's worth of evidence: the
    /// total buffered-arrival backlog across every replica. Healthy
    /// backlogs drain to (near) empty every marker interval; a corrupted
    /// simulation consumes channels at the wrong rates and its backlog
    /// floor only climbs. A trip floods a [`Control::DesyncAlert`] on
    /// every channel — the sender deduplicates and drives the §5 reset.
    fn sample_desync(&mut self) {
        let Some(det) = self.desync.as_mut() else {
            return;
        };
        let backlog: u64 = self
            .flows
            .iter()
            .flatten()
            .map(|f| f.sink.receiver().buffered_total() as u64)
            .sum();
        self.desync_tick += 1;
        if det.observe(self.desync_tick, backlog) {
            let alert = Control::DesyncAlert {
                incarnation: self.incarnation,
            };
            for c in 0..self.links.len() {
                self.reply(c, &alert);
            }
            self.stats.desync_alerts_sent += 1;
        }
    }

    /// Route one received frame to its flow's resequencer (data and
    /// markers) or through the demux-level responders (global control).
    fn route_frame(&mut self, c: ChannelId, buf: Vec<u8>, n: usize) {
        match frame::try_decode_flow(&buf[..n]) {
            Ok((flow, Frame::Data(body))) => {
                let len = body.len();
                let offset = frame::body_offset(&buf[..n]).expect("decoded frame has a body");
                if !self.ensure_flow(flow) {
                    self.stats.dropped_admission += 1;
                    self.pool.put(buf);
                    return;
                }
                self.stats.data_frames += 1;
                let pb = PooledBuf::new(buf, offset, len);
                let sink = &mut self.flows[flow as usize].as_mut().expect("ensured").sink;
                // On overflow the resequencer drops the arrival (counted
                // in that flow's snapshot); the buffer is freed with it.
                let _ = sink.on_arrival(c, Arrival::Data(pb));
            }
            Ok((flow, Frame::Control(Control::Marker(mk)))) => {
                self.stats.control_frames += 1;
                self.pool.put(buf);
                if !self.ensure_flow(flow) {
                    self.stats.dropped_admission += 1;
                    return;
                }
                let sink = &mut self.flows[flow as usize].as_mut().expect("ensured").sink;
                sink.on_arrival(c, Arrival::Marker(mk));
            }
            Ok((_, Frame::Control(ctl))) => {
                self.stats.control_frames += 1;
                self.pool.put(buf);
                self.on_global_control(c, &ctl);
            }
            Err(frame::DecodeError::Corrupt) => {
                self.stats.dropped_corrupt += 1;
                self.corrupt_by_channel[c] += 1;
                self.pool.put(buf);
            }
            Err(frame::DecodeError::Malformed) => {
                self.stats.dropped_malformed += 1;
                self.malformed_by_channel[c] += 1;
                self.pool.put(buf);
            }
        }
    }

    /// Handle an untagged control frame once, for every flow: probes are
    /// acked, membership changes are applied to all replicas and
    /// remembered for future ones, quantum updates fan out likewise.
    fn on_global_control(&mut self, c: ChannelId, ctl: &Control) {
        match ctl {
            Control::Probe { nonce } => {
                self.reply(
                    c,
                    &Control::ProbeAck {
                        nonce: *nonce,
                        incarnation: self.incarnation,
                    },
                );
            }
            Control::ResetRequest { epoch } => {
                use stripe_core::reset::ResponderAction;
                match self.reset_resp.on_request(c, *epoch) {
                    ResponderAction::FlushAndAck { channel, ack } => {
                        // §5 flush: every replica restarts its simulation
                        // and the epoch'd responders forget their state —
                        // the sender is (or believes we are) starting
                        // over, so remembered masks and quanta are stale.
                        for f in self.flows.iter_mut().flatten() {
                            f.sink.reset();
                        }
                        self.last_mask = None;
                        self.last_quanta = None;
                        self.membership = stripe_core::membership::MembershipResponder::new();
                        self.retune = stripe_core::retune::RetuneResponder::new();
                        if let Some(det) = self.desync.as_mut() {
                            det.acknowledge_reset();
                        }
                        self.stats.resets += 1;
                        self.reply(channel, &ack);
                    }
                    ResponderAction::AckOnly { channel, ack } => self.reply(channel, &ack),
                    ResponderAction::Ignore => {}
                }
            }
            Control::Membership {
                epoch,
                live_mask,
                effective_round,
            } => {
                let n = self.links.len();
                use stripe_core::membership::MembershipAction;
                match self
                    .membership
                    .on_membership(c, *epoch, *live_mask, *effective_round, n)
                {
                    MembershipAction::Apply {
                        channel,
                        effective_round,
                        live,
                        ack,
                    } => {
                        for f in self.flows.iter_mut().flatten() {
                            f.sink
                                .receiver_mut()
                                .apply_membership(effective_round, &live);
                        }
                        self.last_mask = Some(live);
                        self.reply(channel, &ack);
                    }
                    MembershipAction::AckOnly { channel, ack } => self.reply(channel, &ack),
                    MembershipAction::Ignore => {}
                }
            }
            Control::QuantumUpdate {
                effective_round,
                quanta,
            } => {
                for f in self.flows.iter_mut().flatten() {
                    f.sink
                        .receiver_mut()
                        .schedule_quanta(*effective_round, quanta);
                }
            }
            Control::QuantumAnnounce {
                epoch,
                effective_round,
                quanta,
            } => {
                let n = self.links.len();
                use stripe_core::retune::RetuneAction;
                match self
                    .retune
                    .on_announce(c, *epoch, *effective_round, quanta, n)
                {
                    RetuneAction::Apply {
                        channel,
                        effective_round,
                        quanta,
                        ack,
                    } => {
                        for f in self.flows.iter_mut().flatten() {
                            f.sink
                                .receiver_mut()
                                .schedule_quanta(effective_round, &quanta);
                        }
                        self.last_quanta = Some(quanta);
                        self.reply(channel, &ack);
                    }
                    RetuneAction::AckOnly { channel, ack } => self.reply(channel, &ack),
                    RetuneAction::Ignore => {}
                }
            }
            _ => {}
        }
    }

    fn reply(&mut self, c: ChannelId, ctl: &Control) {
        frame::encode_control_into(ctl, &mut self.ctl_buf);
        match self.links[c].send_frame(&self.ctl_buf) {
            Ok(()) => self.stats.replies_sent += 1,
            Err(_) => self.stats.replies_lost += 1,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> FlowDemux<S, L> {
    /// Start building: `FlowDemux::builder().scheduler(…).links(…)
    /// .build()`.
    pub fn builder() -> FlowDemuxBuilder<S, L> {
        FlowDemuxBuilder::default()
    }

    /// Frames per [`DatagramLink::recv_run`] call in a sweep.
    const RECV_RUN: usize = 32;

    /// Tear down flow `id`'s replica, freeing its resequencer state.
    /// Call when the application knows the flow is finished (the sender
    /// closed it): the slot becomes reusable, and a later frame naming
    /// the same id instantiates a *fresh* replica instead of continuing
    /// the old simulation — which is what keeps a recycled flow id from
    /// delivering against a stale scheduler state. Undelivered packets
    /// still buffered for the flow are dropped with it. Returns whether
    /// a replica existed.
    pub fn close_flow(&mut self, id: FlowId) -> bool {
        match self.flows.get_mut(id as usize).and_then(|f| f.take()) {
            Some(mut f) => {
                f.sink.reset();
                self.flow_pool.push(f);
                self.stats.flows_active -= 1;
                true
            }
            None => false,
        }
    }

    /// Drain flow `id`'s deliverable packets into `out` (cleared first).
    /// Returns the number delivered; 0 for uninstantiated flows.
    pub fn poll_flow_into(&mut self, id: FlowId, out: &mut RxBatch<PooledBuf>) -> usize {
        match self.flows.get_mut(id as usize).and_then(|f| f.as_mut()) {
            Some(f) => f.sink.poll_into(out),
            None => {
                out.clear();
                0
            }
        }
    }

    /// Deliver flow `id`'s next in-order packet, if any.
    pub fn poll_flow(&mut self, id: FlowId) -> Option<PooledBuf> {
        self.flows
            .get_mut(id as usize)
            .and_then(|f| f.as_mut())?
            .sink
            .poll()
    }

    /// Flow `id`'s head-of-line stall probe (see
    /// [`stripe_core::receiver::LogicalReceiver::stalled`]).
    pub fn flow_stalled(&mut self, id: FlowId, now: SimTime) -> Option<ChannelId> {
        self.flows
            .get_mut(id as usize)
            .and_then(|f| f.as_mut())?
            .sink
            .stalled(now)
    }

    /// Return a consumed packet's storage to the shared receive pool.
    pub fn recycle(&mut self, pkt: PooledBuf) {
        self.pool.put(pkt.into_inner());
    }

    /// Pre-size flow `id`'s resequencer rings (see
    /// [`stripe_core::receiver::LogicalReceiver::reserve`]). No-op for
    /// uninstantiated flows.
    pub fn reserve_flow(&mut self, id: FlowId, per_channel: usize) {
        if let Some(f) = self.flows.get_mut(id as usize).and_then(|f| f.as_mut()) {
            f.sink.receiver_mut().reserve(per_channel);
        }
    }

    /// Flow `id`'s resequencer counters, if instantiated.
    pub fn flow_stats(&self, id: FlowId) -> Option<ReceiverSnapshot> {
        self.flows
            .get(id as usize)
            .and_then(|f| f.as_ref())
            .map(|f| f.sink.stats())
    }

    /// Flow `id`'s sink (resequencer + responders), if instantiated.
    pub fn flow_sink(&self, id: FlowId) -> Option<&StripedSink<S, PooledBuf>> {
        self.flows
            .get(id as usize)
            .and_then(|f| f.as_ref())
            .map(|f| &f.sink)
    }

    /// Mutable access to flow `id`'s sink, if instantiated.
    pub fn flow_sink_mut(&mut self, id: FlowId) -> Option<&mut StripedSink<S, PooledBuf>> {
        self.flows
            .get_mut(id as usize)
            .and_then(|f| f.as_mut())
            .map(|f| &mut f.sink)
    }

    /// One past the highest instantiated flow id (slab length) — the
    /// iteration bound for per-flow polling.
    pub fn flow_slots(&self) -> usize {
        self.flows.len()
    }

    /// Demux-wide counters.
    pub fn net_stats(&self) -> FlowDemuxSnapshot {
        self.stats
    }

    /// Per-channel undecodable-frame counts (indexed by channel id).
    pub fn malformed_by_channel(&self) -> &[u64] {
        &self.malformed_by_channel
    }

    /// Per-channel checksum-discard counts (indexed by channel id).
    pub fn corrupt_by_channel(&self) -> &[u64] {
        &self.corrupt_by_channel
    }

    /// The incarnation nonce this demux reports in probe acks.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        &self.links
    }

    /// Mutable access to the member links.
    pub fn links_mut(&mut self) -> &mut [L] {
        &mut self.links
    }

    /// Take the links back out, consuming the demux — an in-process
    /// endpoint restart keeps its sockets (the kernel side of the
    /// channels survives) while every replica, responder epoch, and the
    /// incarnation die with the old instance.
    pub fn into_links(self) -> Vec<L> {
        self.links
    }

    /// The shared receive buffer pool (for high-water-mark inspection).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::StripeServer;
    use stripe_core::sched::Srr;
    use stripe_core::sender::MarkerConfig;
    use stripe_link::{datagram_pair, TestDatagramLink};

    fn linked(
        flows_cap: usize,
    ) -> (
        StripeServer<Srr, TestDatagramLink>,
        FlowDemux<Srr, TestDatagramLink>,
    ) {
        let (a0, b0) = datagram_pair(2048, 1 << 12);
        let (a1, b1) = datagram_pair(2048, 1 << 12);
        let srv = StripeServer::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(MarkerConfig::every_rounds(4))
            .links(vec![a0, a1])
            .build();
        let demux = FlowDemux::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .max_flows(flows_cap)
            .incarnation(7)
            .build();
        (srv, demux)
    }

    /// Interleaved flows arrive FIFO *per flow*, payloads intact and
    /// never cross-delivered.
    #[test]
    fn per_flow_fifo_across_interleaving() {
        let (mut srv, mut demux) = linked(16);
        let flows: Vec<_> = (0..3).map(|_| srv.open_flow().unwrap()).collect();
        let mut events = Vec::new();
        for round in 0..50u64 {
            for (fi, h) in flows.iter().enumerate() {
                let mut payload = vec![fi as u8; 64 + (round as usize % 7) * 100];
                payload[1..9].copy_from_slice(&round.to_be_bytes());
                srv.enqueue(*h, &payload).unwrap();
            }
            srv.pump_into(SimTime::from_millis(round), usize::MAX, &mut events);
            demux.sweep(SimTime::from_millis(round));
        }
        let mut batch = RxBatch::new();
        for (fi, h) in flows.iter().enumerate() {
            let mut seen = Vec::new();
            demux.poll_flow_into(h.id(), &mut batch);
            for pb in batch.drain() {
                let bytes = pb.as_slice();
                assert_eq!(bytes[0] as usize, fi, "cross-flow delivery");
                seen.push(u64::from_be_bytes(bytes[1..9].try_into().unwrap()));
                demux.recycle(pb);
            }
            assert_eq!(seen, (0..50).collect::<Vec<_>>(), "flow {fi} not FIFO");
        }
        assert_eq!(demux.net_stats().flows_active, 3);
        assert_eq!(demux.net_stats().dropped_malformed, 0);
    }

    /// Flows past the demux population cap are counted, dropped, and do
    /// not disturb admitted flows.
    #[test]
    fn admission_cap_bounds_replicas() {
        let (mut srv, mut demux) = linked(2);
        let flows: Vec<_> = (0..4).map(|_| srv.open_flow().unwrap()).collect();
        let mut events = Vec::new();
        for h in &flows {
            srv.enqueue(*h, &[9; 100]).unwrap();
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO);
        let s = demux.net_stats();
        assert_eq!(s.flows_active, 2);
        assert_eq!(s.dropped_admission, 2);
        assert_eq!(s.data_frames, 2);
        let mut batch = RxBatch::new();
        assert_eq!(demux.poll_flow_into(flows[0].id(), &mut batch), 1);
    }

    /// A quantum announcement reaching the demux is applied to every
    /// replica, remembered for late-created ones, and acked exactly once
    /// per epoch on the reverse path.
    #[test]
    fn quantum_announce_fans_out_and_acks_once_per_epoch() {
        use stripe_transport::ControlPath;
        let (mut srv, mut demux) = linked(8);
        let f0 = srv.open_flow().unwrap();
        srv.enqueue(f0, &[1; 100]).unwrap();
        let mut events = Vec::new();
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO); // replica 0 exists now
        let announce = Control::QuantumAnnounce {
            epoch: 1,
            effective_round: 50,
            quanta: vec![4000, 1000],
        };
        ControlPath::transmit_control(&mut srv, SimTime::ZERO, 0, announce.clone());
        // The same flood on the other channel: ack only, no re-apply.
        ControlPath::transmit_control(&mut srv, SimTime::ZERO, 1, announce);
        demux.sweep(SimTime::ZERO);
        assert_eq!(demux.net_stats().replies_sent, 2);
        let mut buf = [0u8; 2048];
        for c in 0..2 {
            let n = srv.links_mut()[c].recv_frame(&mut buf).expect("ack");
            assert_eq!(
                frame::decode(&buf[..n]),
                Some(Frame::Control(Control::QuantumAck { epoch: 1 }))
            );
        }
        // A replica created after the retune inherits the quanta: its
        // simulation must match a sender flow that replayed the same
        // schedule, so frames keep resequencing FIFO. Exercise it by
        // running a fresh flow through the tuned demux.
        ControlPath::schedule_quanta(&mut srv, 50, &[4000, 1000]);
        let f1 = srv.open_flow().unwrap();
        for round in 0..30u64 {
            let mut payload = vec![7u8; 200 + (round as usize % 5) * 137];
            payload[1..9].copy_from_slice(&round.to_be_bytes());
            srv.enqueue(f1, &payload).unwrap();
            srv.pump_into(SimTime::from_millis(round), usize::MAX, &mut events);
            demux.sweep(SimTime::from_millis(round));
        }
        let mut batch = RxBatch::new();
        let mut seen = Vec::new();
        demux.poll_flow_into(f1.id(), &mut batch);
        for pb in batch.drain() {
            seen.push(u64::from_be_bytes(pb.as_slice()[1..9].try_into().unwrap()));
            demux.recycle(pb);
        }
        assert_eq!(seen, (0..30).collect::<Vec<_>>(), "tuned flow not FIFO");
    }

    /// Closing a replica frees its slot; a later frame naming the same
    /// id gets a *fresh* simulation, so a recycled flow id delivers FIFO
    /// from scratch instead of against stale scheduler state.
    #[test]
    fn closed_flow_slot_restarts_fresh() {
        let (mut srv, mut demux) = linked(8);
        let f0 = srv.open_flow().unwrap();
        let mut events = Vec::new();
        for _ in 0..20 {
            srv.enqueue(f0, &[5; 300]).unwrap();
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO);
        let mut batch = RxBatch::new();
        assert_eq!(demux.poll_flow_into(f0.id(), &mut batch), 20);
        for pb in batch.drain() {
            demux.recycle(pb);
        }
        // Sender closes; app tells the demux. The replica (mid-round
        // scheduler state and all) is gone.
        srv.close_flow(f0).unwrap();
        assert!(demux.close_flow(f0.id()));
        assert!(!demux.close_flow(f0.id()), "double close finds nothing");
        assert_eq!(demux.net_stats().flows_active, 0);
        // The same id reused by a fresh sender flow resequences FIFO.
        let f0b = srv.open_flow().unwrap();
        assert_eq!(f0b.id(), f0.id());
        for round in 0..20u64 {
            let mut payload = vec![6u8; 64 + (round as usize % 7) * 100];
            payload[1..9].copy_from_slice(&round.to_be_bytes());
            srv.enqueue(f0b, &payload).unwrap();
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO);
        let mut seen = Vec::new();
        demux.poll_flow_into(f0b.id(), &mut batch);
        for pb in batch.drain() {
            seen.push(u64::from_be_bytes(pb.as_slice()[1..9].try_into().unwrap()));
            demux.recycle(pb);
        }
        assert_eq!(seen, (0..20).collect::<Vec<_>>(), "reused id not FIFO");
    }

    /// A probe reaching the demux is acked on the reverse path exactly
    /// as the single-flow receiver does.
    #[test]
    fn probe_acked_at_demux_level() {
        use stripe_transport::ControlPath;
        let (mut srv, mut demux) = linked(4);
        ControlPath::transmit_control(&mut srv, SimTime::ZERO, 1, Control::Probe { nonce: 0xABCD });
        demux.sweep(SimTime::ZERO);
        assert_eq!(demux.net_stats().replies_sent, 1);
        let mut buf = [0u8; 2048];
        let n = srv.links_mut()[1].recv_frame(&mut buf).expect("ack");
        assert_eq!(
            frame::decode(&buf[..n]),
            Some(Frame::Control(Control::ProbeAck {
                nonce: 0xABCD,
                incarnation: 7
            }))
        );
    }

    /// A reset request flushes every replica exactly once per epoch,
    /// forgets remembered mask/quanta, and acks on the reverse path —
    /// a retransmitted request acks again without a second flush.
    #[test]
    fn reset_request_flushes_replicas_once_per_epoch() {
        use stripe_transport::ControlPath;
        let (mut srv, mut demux) = linked(8);
        let f0 = srv.open_flow().unwrap();
        let mut events = Vec::new();
        for _ in 0..10 {
            srv.enqueue(f0, &[3; 400]).unwrap();
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO);
        // Packets are buffered/deliverable before the reset…
        let req = Control::ResetRequest { epoch: 1 };
        ControlPath::transmit_control(&mut srv, SimTime::ZERO, 0, req.clone());
        ControlPath::transmit_control(&mut srv, SimTime::ZERO, 1, req);
        demux.sweep(SimTime::ZERO);
        // …and gone after it: the flush dropped them with the replica
        // state, and the retransmitted request did not flush twice.
        let mut batch = RxBatch::new();
        assert_eq!(demux.poll_flow_into(f0.id(), &mut batch), 0);
        assert_eq!(demux.net_stats().resets, 1);
        let mut buf = [0u8; 2048];
        let mut acks = 0;
        for c in 0..2 {
            while let Some(n) = srv.links_mut()[c].recv_frame(&mut buf) {
                if let Some(Frame::Control(Control::ResetAck { epoch })) = frame::decode(&buf[..n])
                {
                    assert_eq!(epoch, 1);
                    acks += 1;
                }
            }
        }
        assert_eq!(acks, 2, "one ack per request, flush or no flush");
        // Delivery restarts cleanly under the new epoch.
        for round in 0..12u64 {
            let mut payload = vec![4u8; 120];
            payload[1..9].copy_from_slice(&round.to_be_bytes());
            srv.enqueue(f0, &payload).unwrap();
        }
        // The sender flow's engine must flush too (the reactor does this
        // via reset_flows); mirror it here.
        srv.reset_flows();
        for round in 0..12u64 {
            let mut payload = vec![4u8; 120];
            payload[1..9].copy_from_slice(&round.to_be_bytes());
            srv.enqueue(f0, &payload).unwrap();
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        demux.sweep(SimTime::ZERO);
        let mut seen = Vec::new();
        demux.poll_flow_into(f0.id(), &mut batch);
        for pb in batch.drain() {
            seen.push(u64::from_be_bytes(pb.as_slice()[1..9].try_into().unwrap()));
            demux.recycle(pb);
        }
        assert_eq!(seen, (0..12).collect::<Vec<_>>(), "post-reset not FIFO");
    }

    /// A channel going dark mid-burst head-of-line blocks every flow:
    /// each armed stall detector must report the dark channel once the
    /// timeout elapses, and clear once markers walk the replicas past
    /// the hole after the blackout lifts.
    #[test]
    fn every_flow_stall_detector_fires_during_blackout_and_clears() {
        let (a0, b0) = datagram_pair(2048, 1 << 12);
        let (a1, b1) = datagram_pair(2048, 1 << 12);
        let mut srv = StripeServer::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(MarkerConfig::every_rounds(4))
            .links(vec![a0, a1])
            .build();
        let mut demux = FlowDemux::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .max_flows(8)
            .incarnation(7)
            .stall_timeout_ns(1_000_000)
            .build();
        let flows: Vec<_> = (0..3).map(|_| srv.open_flow().unwrap()).collect();
        let mut events = Vec::new();
        let mut batch = RxBatch::new();

        // Channel 0 goes dark; a burst per flow straddles the hole.
        for h in &flows {
            for round in 0..16u64 {
                let mut payload = vec![0u8; 300];
                payload[1..9].copy_from_slice(&round.to_be_bytes());
                srv.enqueue(*h, &payload).unwrap();
            }
        }
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        let mut buf = [0u8; 2048];
        while demux.links_mut()[0].recv_frame(&mut buf).is_some() {}
        demux.sweep(SimTime::ZERO);
        for h in &flows {
            demux.poll_flow_into(h.id(), &mut batch);
            for pb in batch.drain() {
                demux.recycle(pb);
            }
        }
        // Before the timeout: blocked but silent.
        for h in &flows {
            assert_eq!(
                demux.flow_stalled(h.id(), SimTime::from_micros(500)),
                None,
                "stall reported before the timeout"
            );
        }
        // After it: every flow names the dark channel.
        for h in &flows {
            assert_eq!(
                demux.flow_stalled(h.id(), SimTime::from_micros(1_500)),
                Some(0),
                "flow {} missed the head-of-line stall",
                h.id()
            );
            assert_eq!(demux.flow_stats(h.id()).unwrap().stalls, 1);
        }

        // Blackout over: idle markers walk every replica past the lost
        // frames, the buffered tail delivers, and the stall clears.
        srv.send_idle_markers_into(SimTime::from_micros(2_000), &mut events);
        demux.sweep(SimTime::from_micros(2_000));
        for h in &flows {
            demux.poll_flow_into(h.id(), &mut batch);
            let mut last = None;
            for pb in batch.drain() {
                let round = u64::from_be_bytes(pb.as_slice()[1..9].try_into().unwrap());
                if let Some(prev) = last {
                    assert!(round > prev, "post-recovery inversion on flow {}", h.id());
                }
                last = Some(round);
                demux.recycle(pb);
            }
            assert!(
                last.is_some(),
                "flow {} delivered nothing after recovery",
                h.id()
            );
            assert_eq!(
                demux.flow_stalled(h.id(), SimTime::from_micros(9_000)),
                None,
                "stall must clear once delivery resumes"
            );
        }
    }
}
