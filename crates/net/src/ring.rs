//! Bounded lock-free single-producer/single-consumer ring — the seam
//! between the single-threaded reactor and a sharded I/O worker.
//!
//! The design is the classic Lamport queue with cached indices: one
//! atomic head (consumer-owned), one atomic tail (producer-owned), a
//! power-of-two slot array, and each side keeping a stale copy of the
//! *other* side's index so the common case (ring neither full nor empty)
//! touches only its own cache line. Capacity is exact: a ring built for
//! `cap` items holds `cap` items (slot array is `cap.next_power_of_two()`
//! and one extra bit of index range disambiguates full from empty).
//!
//! Items move by value. For the datapath the item is a recycled
//! `Vec<u8>` (or a `RecvSlot` wrapping one), so pushing a frame across a
//! ring is a pointer move, never a byte copy — the rings are how the
//! 0 allocs/packet story survives the thread hop: buffers circulate
//! reactor → tx ring → worker → tx-free ring → reactor (and mirrored on
//! the receive side), no allocation in steady state.
//!
//! No waiting lives here: `push` fails on full, `pop` returns `None` on
//! empty. The spin-then-park protocol (who sleeps when, who wakes whom)
//! belongs to [`crate::shard`].

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index to pop (owned by the consumer).
    head: AtomicUsize,
    /// Next index to push (owned by the producer).
    tail: AtomicUsize,
}

// The ring hands each slot to exactly one side at a time (indices are
// the ownership protocol), so it is Sync whenever T may cross threads.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // Still-queued items are initialized and owned by the ring.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The producing half of an SPSC ring (see [`spsc`]). `!Clone`: exactly
/// one producer exists.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Stale copy of `head`; refreshed only when the ring looks full.
    head_cache: usize,
    /// Local copy of `tail` (we are the only writer).
    tail: usize,
}

/// The consuming half of an SPSC ring (see [`spsc`]). `!Clone`: exactly
/// one consumer exists.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of `head` (we are the only writer).
    head: usize,
    /// Stale copy of `tail`; refreshed only when the ring looks empty.
    tail_cache: usize,
}

/// Build a bounded SPSC ring holding up to `cap` items (`cap >= 1`;
/// rounded up to a power of two internally, capacity reported exactly).
pub fn spsc<T: Send>(cap: usize) -> (Producer<T>, Consumer<T>) {
    assert!(cap >= 1, "ring capacity must be at least 1");
    let slots_len = cap.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slots_len)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        mask: slots_len - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
            tail: 0,
        },
        Consumer {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Push one item, or hand it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let cap = self.inner.mask + 1;
        if self.tail.wrapping_sub(self.head_cache) >= cap {
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) >= cap {
                return Err(item);
            }
        }
        let slot = &self.inner.slots[self.tail & self.inner.mask];
        unsafe { (*slot.get()).write(item) };
        self.tail = self.tail.wrapping_add(1);
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Items currently in the ring (approximate from this side: never
    /// under-counts — the consumer can only have drained more).
    pub fn len(&self) -> usize {
        let head = self.inner.head.load(Ordering::Acquire);
        self.tail.wrapping_sub(head)
    }

    /// Whether the ring looks empty from the producer side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Consumer<T> {
    /// Pop one item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.inner.slots[self.head & self.inner.mask];
        let item = unsafe { (*slot.get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.inner.head.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Items currently in the ring (approximate from this side: never
    /// over-counts — the producer can only have added more).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        tail.wrapping_sub(self.head)
    }

    /// Whether the ring looks empty from the consumer side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut p, mut c) = spsc::<u32>(4);
        assert_eq!(p.capacity(), 4);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert_eq!(p.push(99), Err(99), "full ring hands the item back");
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraps_many_times() {
        let (mut p, mut c) = spsc::<usize>(2);
        for i in 0..1000 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
        assert!(c.is_empty());
        assert!(p.is_empty());
    }

    #[test]
    fn drops_queued_items_exactly_once() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = spsc::<Tracked>(4);
        p.push(Tracked).unwrap();
        p.push(Tracked).unwrap();
        p.push(Tracked).unwrap();
        drop(c.pop()); // one dropped by the consumer
        drop((p, c)); // two dropped by the ring itself
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        let (mut p, mut c) = spsc::<u64>(8);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                match p.push(i) {
                    Ok(()) => i += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pop(), None);
    }
}
