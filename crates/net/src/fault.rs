//! Deterministic loss injection for real links: the net-path sibling of
//! the simulator's [`stripe_link::FaultPlan`].
//!
//! A real network drops packets whenever it pleases, which is useless
//! for tests that must *prove* marker recovery (Theorem 5.1): they need
//! a drop at a known place and a lossless tail afterwards. [`DropLink`]
//! wraps any [`DatagramLink`] and swallows selected **data** frames on
//! the send side — identified by peeking the frame-kind byte through
//! [`crate::frame::is_data_frame`] — while letting every marker and
//! control message through, exactly like the simulated loss models,
//! which never touch the control codepoint either.
//!
//! Since the chaos layer landed, `DropLink` is a thin shim over
//! [`ImpairedLink`] with a plan containing only a [`DropPolicy`]: the
//! drop logic lives in one place ([`crate::chaos`]) and this type only
//! keeps the narrow, long-standing API that the Theorem 5.1 tests and
//! examples were written against.

use stripe_link::{DatagramLink, TxError};

use crate::chaos::{ChaosPlan, ImpairedLink};

pub use crate::chaos::DropPolicy;

/// A [`DatagramLink`] wrapper that deterministically drops data frames
/// on the send side, passing control frames untouched.
#[derive(Debug)]
pub struct DropLink<L: DatagramLink> {
    inner: ImpairedLink<L>,
}

impl<L: DatagramLink> DropLink<L> {
    /// Wrap `inner` under `policy`.
    pub fn new(inner: L, policy: DropPolicy) -> Self {
        Self {
            inner: ImpairedLink::new(inner, ChaosPlan::none().loss(policy), 0),
        }
    }

    /// Data frames swallowed so far.
    pub fn dropped(&self) -> u64 {
        self.inner.snapshot().dropped_loss
    }

    /// Data frames offered so far (dropped or not).
    pub fn seen_data(&self) -> u64 {
        self.inner.snapshot().seen_data
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        self.inner.inner()
    }

    /// Mutable access to the wrapped link.
    pub fn inner_mut(&mut self) -> &mut L {
        self.inner.inner_mut()
    }
}

impl<L: DatagramLink> DatagramLink for DropLink<L> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.inner.send_frame(frame)
    }

    fn send_frame_deferred(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.inner.send_frame_deferred(frame)
    }

    // send_run stays on the trait default (per-frame loop), exactly as
    // before the chaos layer: the policy sees every frame.

    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        // A pure-drop plan takes ImpairedLink's run-preserving fast
        // path: maximal kept sub-runs forwarded in single calls, drops
        // reported Ok(()) in place with storage untouched.
        self.inner.send_run_owned(frames, out)
    }

    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        self.inner.recv_run(bufs, lens)
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        self.inner.recv_frame(buf)
    }

    fn mtu(&self) -> usize {
        self.inner.mtu()
    }

    fn coalesce_hint(&self) -> bool {
        self.inner.coalesce_hint()
    }

    fn flush(&mut self) -> usize {
        self.inner.flush()
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn link_dead(&self) -> bool {
        self.inner.link_dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_control_into, encode_data_into};
    use stripe_core::control::Control;
    use stripe_link::datagram_pair;

    fn data_frame(byte: u8) -> Vec<u8> {
        let mut f = Vec::new();
        encode_data_into(&[byte], &mut f);
        f
    }

    #[test]
    fn window_drops_exactly_the_window() {
        let (a, mut b) = datagram_pair(256, 64);
        let mut link = DropLink::new(a, DropPolicy::Window { from: 2, to: 4 });
        for i in 0..6u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        assert_eq!(link.dropped(), 2);
        let mut buf = [0u8; 256];
        let mut got = Vec::new();
        while let Some(n) = b.recv_frame(&mut buf) {
            got.push(buf[..n][n - 1]);
        }
        assert_eq!(got, vec![0, 1, 4, 5]);
    }

    #[test]
    fn control_frames_pass_through_the_window() {
        let (a, mut b) = datagram_pair(256, 64);
        let mut link = DropLink::new(a, DropPolicy::Window { from: 0, to: 100 });
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 5 }, &mut ctl);
        link.send_frame(&ctl).unwrap();
        link.send_frame(&data_frame(1)).unwrap();
        let mut buf = [0u8; 256];
        assert!(b.recv_frame(&mut buf).is_some(), "control must arrive");
        assert!(b.recv_frame(&mut buf).is_none(), "data must not");
        assert_eq!(link.dropped(), 1);
        assert_eq!(link.seen_data(), 1);
    }

    #[test]
    fn periodic_drops_every_nth() {
        let (a, mut b) = datagram_pair(256, 64);
        let mut link = DropLink::new(a, DropPolicy::Periodic { period: 3 });
        for i in 0..9u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        assert_eq!(link.dropped(), 3);
        let mut buf = [0u8; 256];
        let mut got = Vec::new();
        while let Some(n) = b.recv_frame(&mut buf) {
            got.push(buf[..n][n - 1]);
        }
        assert_eq!(got, vec![0, 1, 3, 4, 6, 7]);
    }

    #[test]
    fn send_run_owned_applies_the_same_policy_as_per_frame() {
        let make_frames = || {
            let mut frames: Vec<Vec<u8>> = (0..9u8).map(data_frame).collect();
            let mut ctl = Vec::new();
            encode_control_into(&Control::Probe { nonce: 5 }, &mut ctl);
            frames.insert(4, ctl);
            frames
        };
        let (a1, mut b1) = datagram_pair(256, 64);
        let (a2, mut b2) = datagram_pair(256, 64);
        let mut per_frame = DropLink::new(a1, DropPolicy::Periodic { period: 3 });
        let mut batched = DropLink::new(a2, DropPolicy::Periodic { period: 3 });
        let frames = make_frames();
        let mut out_ref = Vec::new();
        for f in &frames {
            out_ref.push(per_frame.send_frame(f));
        }
        let mut owned = make_frames();
        let mut out = Vec::new();
        batched.send_run_owned(&mut owned, &mut out);
        assert_eq!(out, out_ref);
        assert_eq!(batched.dropped(), per_frame.dropped());
        assert_eq!(batched.seen_data(), per_frame.seen_data());
        // Byte-identical survivor streams, in order.
        let (mut buf1, mut buf2) = ([0u8; 256], [0u8; 256]);
        loop {
            let r1 = b1.recv_frame(&mut buf1).map(|n| buf1[..n].to_vec());
            let r2 = b2.recv_frame(&mut buf2).map(|n| buf2[..n].to_vec());
            assert_eq!(r1, r2);
            if r1.is_none() {
                break;
            }
        }
    }

    #[test]
    fn none_policy_is_transparent() {
        let (a, mut b) = datagram_pair(256, 64);
        let mut link = DropLink::new(a, DropPolicy::None);
        link.send_frame(&data_frame(7)).unwrap();
        let mut buf = [0u8; 256];
        assert!(b.recv_frame(&mut buf).is_some());
        assert_eq!(link.dropped(), 0);
    }
}
