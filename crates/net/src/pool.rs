//! Recycled receive buffers: the zero-allocation receive half of the
//! real-socket datapath.
//!
//! The simulated datapath never materializes packets, so its
//! zero-alloc story is purely about scratch reuse. A socket must
//! actually land bytes somewhere, and a fresh `Vec` per datagram would
//! put an allocation on every received packet. [`BufPool`] breaks that:
//! `recv` lands each frame in a pooled buffer, the payload travels
//! through the [`LogicalReceiver`] as a [`PooledBuf`] *view* (no copy,
//! no refcount), and the consumer hands the storage back with
//! [`BufPool::put`]. Steady state, the same few buffers cycle forever.
//!
//! [`LogicalReceiver`]: stripe_core::receiver::LogicalReceiver

use stripe_core::types::WireLen;

/// An owned view into a pooled buffer: the storage plus the
/// `offset..offset+len` window holding one packet's payload.
///
/// Its [`WireLen`] is the *payload* length — the same number the sender
/// charged against its deficit counter for this packet — so the
/// receiver's scheduler simulation advances exactly in step with the
/// sender's (condition C2 needs both ends to agree on every length).
#[derive(Debug, PartialEq, Eq)]
pub struct PooledBuf {
    data: Vec<u8>,
    offset: usize,
    len: usize,
}

impl PooledBuf {
    /// View `data[offset..offset + len]` as one packet's payload.
    ///
    /// # Panics
    /// Panics if the window exceeds the buffer.
    pub fn new(data: Vec<u8>, offset: usize, len: usize) -> Self {
        assert!(offset + len <= data.len(), "payload window out of bounds");
        Self { data, offset, len }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reclaim the backing storage (to hand back to a [`BufPool`]).
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }
}

impl WireLen for PooledBuf {
    fn wire_len(&self) -> usize {
        self.len
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A pool of fixed-size receive buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    buf_len: usize,
    allocated: u64,
}

impl BufPool {
    /// A pool of `initial` pre-allocated buffers of `buf_len` bytes each.
    /// `buf_len` should be the channel MTU: every frame must fit.
    pub fn new(buf_len: usize, initial: usize) -> Self {
        assert!(buf_len > 0, "buffers must have room for a frame");
        Self {
            free: (0..initial).map(|_| vec![0u8; buf_len]).collect(),
            buf_len,
            allocated: initial as u64,
        }
    }

    /// Take a buffer of exactly [`buf_len`](Self::buf_len) bytes,
    /// recycling a free one when available and allocating only when the
    /// pool is dry (a high-water-mark growth, like every scratch buffer
    /// in the batched datapath).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.allocated += 1;
                vec![0u8; self.buf_len]
            }
        }
    }

    /// Return a buffer to the pool. Buffers of the wrong size (e.g. from
    /// a reconfigured pool) are resized back to `buf_len`.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.resize(self.buf_len, 0);
        self.free.push(buf);
    }

    /// Buffer size this pool hands out.
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// Buffers currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total buffers ever allocated (the high-water mark; a steady-state
    /// datapath stops growing this).
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_before_allocating() {
        let mut pool = BufPool::new(64, 2);
        assert_eq!(pool.allocated(), 2);
        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.allocated(), 2, "both served from the pool");
        assert_eq!(pool.free_count(), 0);
        let c = pool.take();
        assert_eq!(pool.allocated(), 3, "dry pool grows");
        pool.put(a);
        pool.put(b);
        pool.put(c);
        for _ in 0..100 {
            let buf = pool.take();
            pool.put(buf);
        }
        assert_eq!(pool.allocated(), 3, "steady state never grows");
    }

    #[test]
    fn put_restores_full_size() {
        let mut pool = BufPool::new(16, 1);
        let mut buf = pool.take();
        buf.truncate(3);
        pool.put(buf);
        assert_eq!(pool.take().len(), 16);
    }

    #[test]
    fn pooled_buf_views_payload_window() {
        let mut data = vec![0u8; 10];
        data[3..6].copy_from_slice(&[7, 8, 9]);
        let pb = PooledBuf::new(data, 3, 3);
        assert_eq!(pb.as_slice(), &[7, 8, 9]);
        assert_eq!(pb.wire_len(), 3);
        assert_eq!(pb.len(), 3);
        assert!(!pb.is_empty());
        assert_eq!(pb.into_inner().len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_window_panics() {
        let _ = PooledBuf::new(vec![0; 4], 2, 3);
    }
}
