//! Seeded, deterministic chaos injection for real links: the net-path
//! analogue of the simulator's [`stripe_link::FaultPlan`], widened from
//! a single impairment (send-side loss) to the full menagerie a striping
//! system must survive — loss, reordering, duplication, payload
//! corruption, latency jitter, and partitions.
//!
//! [`ImpairedLink`] wraps any [`DatagramLink`] and applies a
//! [`ChaosPlan`] on the send side, driven by a [`DetRng`] so the same
//! seed replays the same impairment sequence bit-for-bit — runs are
//! reproducible, failures are debuggable, and a soak harness can sweep
//! seeds. Every injected event is counted in a [`ChaosSnapshot`], which
//! makes conservation accounting possible: frames offered equal frames
//! forwarded plus counted drops plus frames still held in the reorder
//! queue.
//!
//! Impairment fates are **exclusive** per data frame, resolved in
//! priority order: partition > deterministic loss policy > Bernoulli
//! loss > corruption > duplication > reordering > jitter. One frame,
//! one fate — so the snapshot's counters partition the offered frames
//! and the accounting closes exactly.
//!
//! Corruption flips a single bit in the frame *body*, modelling the
//! in-flight bit errors of §5. A corrupted frame is still forwarded —
//! catching it is the receiver's job, via the checksummed data kind
//! ([`crate::frame::KIND_DATA_SUMMED`]). Plans with a nonzero
//! corruption rate should only be pointed at paths built with integrity
//! mode on; plain [`crate::frame::KIND_DATA`] frames carry no checksum
//! and a body flip would be delivered as wrong bytes.
//!
//! Partitions are "timed" in the link's own deterministic clock — the
//! data-frame send index — because a [`DatagramLink`] has no wall
//! clock. While a partition window is active **everything** is dropped,
//! control frames included, which is exactly what starves the liveness
//! tracker and drives failover.
//!
//! Rate shaping ([`ChaosPlan::shape`]) is a token-bucket *policer* in
//! the same deterministic clock family: the bucket refills once per
//! [`DatagramLink::flush`] (the once-per-pump cadence of both the
//! server and the reactor), data frames spend wire bytes, and a frame
//! the bucket cannot cover is dropped and counted (`dropped_shaped`) —
//! exactly like congestive loss at a capacity bottleneck. Control
//! frames are exempt, so liveness survives a saturated link. Scripting
//! asymmetric rates (e.g. 4:2:1 across three channels) gives the
//! adaptive estimator reproducible heterogeneous goodput ground truth.

use std::collections::VecDeque;

use stripe_link::{DatagramLink, TxError};
use stripe_netsim::DetRng;

use crate::frame::{is_data_frame, FRAME_HEADER_LEN};

/// Scale of all probability knobs: parts per million. `1_000_000` means
/// "always", `0` means "never".
pub const PPM_SCALE: u32 = 1_000_000;

/// Ceiling on spare buffers the link keeps for reorder/corruption
/// copies, so a pathological plan cannot hoard memory.
const SPARE_POOL_CAP: usize = 64;

/// Rounds [`ImpairedLink::drain_held`] will retry a backpressured inner
/// link before declaring the remaining held frames lost.
const DRAIN_RETRIES: usize = 64;

/// Which data frames (counted per link, in send order, starting at 0)
/// are dropped by the *deterministic* loss component of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop nothing.
    None,
    /// Drop data frames with index in `from..to` — one loss burst, then
    /// a clean tail (the Theorem 5.1 test shape).
    Window {
        /// First data-frame index dropped.
        from: u64,
        /// First data-frame index *not* dropped again.
        to: u64,
    },
    /// Drop every `period`-th data frame, forever (steady background
    /// loss for demos and benches).
    Periodic {
        /// Drop one frame out of every `period` (must be ≥ 2).
        period: u64,
    },
}

impl DropPolicy {
    /// Whether the data frame with this send `index` is dropped.
    pub fn drops(&self, index: u64) -> bool {
        match *self {
            DropPolicy::None => false,
            DropPolicy::Window { from, to } => (from..to).contains(&index),
            DropPolicy::Periodic { period } => index % period == period - 1,
        }
    }
}

/// A deterministic schedule of impairments for one channel.
///
/// Built fluently, mirroring the simulator's `FaultPlan`:
///
/// ```
/// use stripe_net::chaos::{ChaosPlan, DropPolicy};
/// let plan = ChaosPlan::none()
///     .loss(DropPolicy::Window { from: 50, to: 55 })
///     .loss_bernoulli(20_000)      // plus 2% random loss
///     .reorder(10_000, 4)          // 1% held back up to 4 frames
///     .duplicate(5_000)
///     .corrupt(5_000)
///     .jitter(10_000, 2)
///     .partition(400, 450)         // everything dark for 50 frames
///     .active(0, 1_000);           // probabilistic chaos quiesces at 1k
/// # let _ = plan;
/// ```
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    loss: DropPolicy,
    loss_ppm: u32,
    corrupt_ppm: u32,
    duplicate_ppm: u32,
    reorder_ppm: u32,
    reorder_depth: u32,
    jitter_ppm: u32,
    jitter_hold: u32,
    partitions: Vec<(u64, u64)>,
    active_from: u64,
    active_to: u64,
    shape_rate: u64,
    shape_burst: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            loss: DropPolicy::None,
            loss_ppm: 0,
            corrupt_ppm: 0,
            duplicate_ppm: 0,
            reorder_ppm: 0,
            reorder_depth: 0,
            jitter_ppm: 0,
            jitter_hold: 0,
            partitions: Vec::new(),
            active_from: 0,
            active_to: u64::MAX,
            shape_rate: 0,
            shape_burst: 0,
        }
    }
}

fn check_ppm(ppm: u32, what: &str) {
    assert!(
        ppm <= PPM_SCALE,
        "{what} rate {ppm} exceeds {PPM_SCALE} ppm"
    );
}

impl ChaosPlan {
    /// A plan with no impairments at all (the wrapper becomes
    /// transparent).
    pub fn none() -> Self {
        Self::default()
    }

    /// Deterministic loss by send index (the [`DropPolicy`] shapes).
    ///
    /// # Panics
    /// Panics if the policy is `Periodic` with `period < 2`.
    pub fn loss(mut self, policy: DropPolicy) -> Self {
        if let DropPolicy::Periodic { period } = policy {
            assert!(period >= 2, "periodic drop needs period >= 2");
        }
        self.loss = policy;
        self
    }

    /// Bernoulli loss: each data frame independently dropped with
    /// probability `ppm` / 1 000 000.
    pub fn loss_bernoulli(mut self, ppm: u32) -> Self {
        check_ppm(ppm, "loss");
        self.loss_ppm = ppm;
        self
    }

    /// Single-bit body corruption with probability `ppm` / 1 000 000.
    /// The damaged frame is *forwarded* — the receiver must catch it.
    pub fn corrupt(mut self, ppm: u32) -> Self {
        check_ppm(ppm, "corruption");
        self.corrupt_ppm = ppm;
        self
    }

    /// Duplication: the frame is sent twice, back to back, with
    /// probability `ppm` / 1 000 000.
    pub fn duplicate(mut self, ppm: u32) -> Self {
        check_ppm(ppm, "duplication");
        self.duplicate_ppm = ppm;
        self
    }

    /// Reordering: with probability `ppm` / 1 000 000 a data frame is
    /// held back while 1..=`depth` later sends overtake it, then
    /// released.
    ///
    /// # Panics
    /// Panics if `ppm > 0` and `depth == 0`.
    pub fn reorder(mut self, ppm: u32, depth: u32) -> Self {
        check_ppm(ppm, "reorder");
        assert!(ppm == 0 || depth >= 1, "reorder depth must be >= 1");
        self.reorder_ppm = ppm;
        self.reorder_depth = depth;
        self
    }

    /// Latency jitter: with probability `ppm` / 1 000 000 a data frame
    /// is delayed by exactly `hold` subsequent sends before release —
    /// a spike, where [`ChaosPlan::reorder`] is a fuzz.
    ///
    /// # Panics
    /// Panics if `ppm > 0` and `hold == 0`.
    pub fn jitter(mut self, ppm: u32, hold: u32) -> Self {
        check_ppm(ppm, "jitter");
        assert!(ppm == 0 || hold >= 1, "jitter hold must be >= 1");
        self.jitter_ppm = ppm;
        self.jitter_hold = hold;
        self
    }

    /// Total partition while the data-frame send index is in
    /// `from..to`: *all* frames dropped, control included, so liveness
    /// starves and failover engages.
    ///
    /// # Panics
    /// Panics if `to <= from`.
    pub fn partition(mut self, from: u64, to: u64) -> Self {
        assert!(to > from, "empty partition window");
        self.partitions.push((from, to));
        self
    }

    /// Gate the *probabilistic* impairments (Bernoulli loss,
    /// corruption, duplication, reorder, jitter) to data-frame indices
    /// in `from..to`. Deterministic loss and partitions keep their own
    /// windows. Lets a soak run quiesce chaos and assert the Theorem
    /// 5.1 clean-tail recovery.
    ///
    /// # Panics
    /// Panics if `to <= from`.
    pub fn active(mut self, from: u64, to: u64) -> Self {
        assert!(to > from, "empty active window");
        self.active_from = from;
        self.active_to = to;
        self
    }

    /// Token-bucket rate shaping (a policer, not a queue): the bucket
    /// starts full at `burst` bytes, refills `rate` bytes once per
    /// [`DatagramLink::flush`], and every *data* frame spends its wire
    /// length. A frame the bucket cannot cover is dropped and counted
    /// as `dropped_shaped` — the deterministic analogue of congestive
    /// loss at a capacity bottleneck, and the scriptable ground truth
    /// for heterogeneous-goodput estimation (e.g. rates 4R/2R/R across
    /// three channels). Control frames are exempt so liveness probes
    /// survive saturation.
    ///
    /// # Panics
    /// Panics if `rate == 0` or `burst < rate` (credit above the cap
    /// would be wasted every refill).
    pub fn shape(mut self, rate: u64, burst: u64) -> Self {
        assert!(rate > 0, "shaping rate must be positive");
        assert!(burst >= rate, "shaping burst below rate wastes refill");
        self.shape_rate = rate;
        self.shape_burst = burst;
        self
    }

    /// Whether token-bucket shaping is in force.
    pub fn shaped(&self) -> bool {
        self.shape_rate > 0
    }

    /// The shaping refill rate in bytes per flush (`0` when off).
    pub fn shape_rate(&self) -> u64 {
        self.shape_rate
    }

    fn in_partition(&self, index: u64) -> bool {
        self.partitions
            .iter()
            .any(|&(from, to)| (from..to).contains(&index))
    }

    fn in_active(&self, index: u64) -> bool {
        (self.active_from..self.active_to).contains(&index)
    }

    /// Whether the plan is *only* a deterministic drop policy — the
    /// shape [`crate::fault::DropLink`] uses — enabling the run-
    /// preserving fast path in `send_run_owned`.
    fn pure_drop(&self) -> bool {
        self.loss_ppm == 0
            && self.corrupt_ppm == 0
            && self.duplicate_ppm == 0
            && self.reorder_ppm == 0
            && self.jitter_ppm == 0
            && self.partitions.is_empty()
            && self.shape_rate == 0
    }
}

/// Counters for every event the chaos layer injected.
///
/// The drop counters partition the offered data frames (fates are
/// exclusive), so for a quiesced link with an empty hold queue:
/// `seen_data == forwarded + dropped_loss + dropped_partition +
/// dropped_shaped + dropped_release`, where `forwarded` frames all
/// reached the inner link (corrupted and duplicated ones included).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Data frames offered to the wrapper.
    pub seen_data: u64,
    /// Control frames offered to the wrapper.
    pub seen_control: u64,
    /// Data frames swallowed by the loss models (policy + Bernoulli).
    pub dropped_loss: u64,
    /// Frames (data *and* control) swallowed by partition windows.
    pub dropped_partition: u64,
    /// Data frames the token-bucket policer could not cover.
    pub dropped_shaped: u64,
    /// Data-frame wire bytes the policer let through (carried load —
    /// the shaping ground truth the estimator should converge to).
    pub shaped_bytes: u64,
    /// Data frames forwarded with one body bit flipped.
    pub corrupted: u64,
    /// Data frames forwarded twice.
    pub duplicated: u64,
    /// Data frames held back for reordering.
    pub reordered: u64,
    /// Data frames held back by a jitter spike.
    pub jittered: u64,
    /// Held frames since released to the inner link.
    pub released: u64,
    /// Held frames the inner link refused at release time (lost).
    pub dropped_release: u64,
}

impl ChaosSnapshot {
    /// All frames the chaos layer destroyed (never reached the wire).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_shaped + self.dropped_release
    }
}

/// A frame held back by reorder/jitter: released once `hold` more
/// send/flush ticks have elapsed.
#[derive(Debug)]
struct Held {
    buf: Vec<u8>,
    hold: u32,
}

/// The fate the plan assigns one data frame.
enum Fate {
    Forward,
    DropLoss,
    DropPartition,
    DropShaped,
    Corrupt,
    Duplicate,
    Hold { ticks: u32, jitter: bool },
}

/// A [`DatagramLink`] wrapper injecting the impairments of a
/// [`ChaosPlan`] on the send side, deterministically from a seed.
///
/// Receive-side calls pass straight through: impairing one direction is
/// enough when each test owns both ends, and it keeps cause and effect
/// legible — every injected event happened at a known send index.
#[derive(Debug)]
pub struct ImpairedLink<L: DatagramLink> {
    inner: L,
    plan: ChaosPlan,
    rng: DetRng,
    held: VecDeque<Held>,
    spare: Vec<Vec<u8>>,
    stats: ChaosSnapshot,
    /// Token-bucket credit in bytes (shaping only; starts at burst).
    tokens: u64,
    /// Scripted total partition, control included (see
    /// [`ImpairedLink::partition_now`]). Orthogonal to the plan's
    /// frame-indexed windows so a harness can flip it mid-run without
    /// knowing the current send index.
    blackout: bool,
}

impl<L: DatagramLink> ImpairedLink<L> {
    /// Wrap `inner` under `plan`; `seed` drives every probabilistic
    /// draw, so equal seeds replay equal impairment sequences.
    pub fn new(inner: L, plan: ChaosPlan, seed: u64) -> Self {
        let tokens = plan.shape_burst;
        Self {
            inner,
            plan,
            rng: DetRng::new(seed),
            held: VecDeque::new(),
            spare: Vec::new(),
            stats: ChaosSnapshot::default(),
            tokens,
            blackout: false,
        }
    }

    /// Start a total partition *now*: every subsequent frame — control
    /// included — is swallowed (counted as `dropped_partition`) until
    /// [`ImpairedLink::heal`]. Unlike [`ChaosPlan::partition`] this is
    /// keyed on wall-clock script order rather than the data-frame send
    /// index, which freezes the moment the membership mask drops the
    /// channel — exactly when a correlated-blackout script needs to
    /// keep the dark window open.
    pub fn partition_now(&mut self) {
        self.blackout = true;
    }

    /// Lift a scripted partition started by
    /// [`ImpairedLink::partition_now`].
    pub fn heal(&mut self) {
        self.blackout = false;
    }

    /// Whether a scripted total partition is in force.
    pub fn blacked_out(&self) -> bool {
        self.blackout
    }

    /// Everything injected so far.
    pub fn snapshot(&self) -> ChaosSnapshot {
        self.stats
    }

    /// The plan in force.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Swap the plan in force, keeping counters, RNG state, and the
    /// hold queue. This is how a harness scripts *timed* impairments
    /// the frame-indexed windows can't express — e.g. a flap soak
    /// partitioning a channel whose data-frame index froze when the
    /// membership mask dropped it, then lifting the partition to let
    /// the lifecycle machine probe its way back.
    pub fn set_plan(&mut self, plan: ChaosPlan) {
        // A plan swap refills the bucket to the new burst: scripted
        // rate changes start from a deterministic, full-credit state.
        self.tokens = plan.shape_burst;
        self.plan = plan;
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Mutable access to the wrapped link.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }

    /// Frames currently parked in the reorder/jitter hold queue.
    pub fn held_frames(&self) -> usize {
        self.held.len()
    }

    /// Force-release every held frame in queue order, retrying inner
    /// backpressure a bounded number of times; stragglers are counted
    /// as `dropped_release`. Call at end of test so the conservation
    /// accounting closes with an empty hold queue.
    pub fn drain_held(&mut self) {
        for _ in 0..DRAIN_RETRIES {
            if self.held.is_empty() {
                break;
            }
            for h in &mut self.held {
                h.hold = 1;
            }
            self.tick_held();
            self.inner.flush();
        }
        while let Some(h) = self.held.pop_front() {
            self.stats.dropped_release += 1;
            self.recycle(h.buf);
        }
    }

    fn take_spare(&mut self, cap: usize) -> Vec<u8> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.reserve(cap);
        buf
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        if self.spare.len() < SPARE_POOL_CAP {
            self.spare.push(buf);
        }
    }

    /// Bernoulli draw at `ppm` parts per million.
    fn chance_ppm(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.range_u64(0, PPM_SCALE as u64) < ppm as u64
    }

    fn fate_for_data(&mut self, index: u64, wire_len: usize) -> Fate {
        if self.plan.in_partition(index) {
            return Fate::DropPartition;
        }
        if self.plan.loss.drops(index) {
            return Fate::DropLoss;
        }
        if self.plan.shaped() {
            // Policer: a frame the bucket cannot cover is congestive
            // loss; a covered frame spends its wire bytes even if a
            // later fate corrupts or holds it — it transits the link
            // either way.
            if self.tokens < wire_len as u64 {
                return Fate::DropShaped;
            }
            self.tokens -= wire_len as u64;
            self.stats.shaped_bytes += wire_len as u64;
        }
        if !self.plan.in_active(index) {
            return Fate::Forward;
        }
        if self.chance_ppm(self.plan.loss_ppm) {
            return Fate::DropLoss;
        }
        if self.chance_ppm(self.plan.corrupt_ppm) {
            return Fate::Corrupt;
        }
        if self.chance_ppm(self.plan.duplicate_ppm) {
            return Fate::Duplicate;
        }
        if self.chance_ppm(self.plan.reorder_ppm) {
            let depth = self.plan.reorder_depth as u64;
            let ticks = self.rng.range_u64(1, depth + 1) as u32;
            return Fate::Hold {
                ticks,
                jitter: false,
            };
        }
        if self.chance_ppm(self.plan.jitter_ppm) {
            return Fate::Hold {
                ticks: self.plan.jitter_hold,
                jitter: true,
            };
        }
        Fate::Forward
    }

    fn send_inner(&mut self, frame: &[u8], deferred: bool) -> Result<(), TxError> {
        if deferred {
            self.inner.send_frame_deferred(frame)
        } else {
            self.inner.send_frame(frame)
        }
    }

    /// Age the hold queue by one tick and release everything due, in
    /// queue order. Inner backpressure re-holds the frame for one more
    /// tick; any other refusal loses it (counted).
    fn tick_held(&mut self) {
        if self.held.is_empty() {
            return;
        }
        for h in &mut self.held {
            h.hold = h.hold.saturating_sub(1);
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].hold > 0 {
                i += 1;
                continue;
            }
            let h = self.held.remove(i).expect("index in bounds");
            match self.inner.send_frame(&h.buf) {
                Ok(()) => {
                    self.stats.released += 1;
                    self.recycle(h.buf);
                }
                Err(TxError::QueueFull) => {
                    self.held.insert(i, Held { hold: 1, ..h });
                    i += 1;
                }
                Err(_) => {
                    self.stats.dropped_release += 1;
                    self.recycle(h.buf);
                }
            }
        }
    }

    /// Apply the plan to one frame. Does *not* tick the hold queue —
    /// the public entry points do that exactly once per call.
    fn offer(&mut self, frame: &[u8], deferred: bool) -> Result<(), TxError> {
        if !is_data_frame(frame) {
            self.stats.seen_control += 1;
            if self.blackout || self.plan.in_partition(self.stats.seen_data) {
                self.stats.dropped_partition += 1;
                return Ok(());
            }
            return self.send_inner(frame, deferred);
        }
        let index = self.stats.seen_data;
        self.stats.seen_data += 1;
        if self.blackout {
            self.stats.dropped_partition += 1;
            return Ok(());
        }
        match self.fate_for_data(index, frame.len()) {
            Fate::Forward => self.send_inner(frame, deferred),
            Fate::DropLoss => {
                // Swallowed in flight: the sender sees success, nothing
                // arrives — indistinguishable from network loss.
                self.stats.dropped_loss += 1;
                Ok(())
            }
            Fate::DropPartition => {
                self.stats.dropped_partition += 1;
                Ok(())
            }
            Fate::DropShaped => {
                self.stats.dropped_shaped += 1;
                Ok(())
            }
            Fate::Corrupt => {
                let mut buf = self.take_spare(frame.len());
                buf.extend_from_slice(frame);
                // Flip one body bit; if the body is empty, hit the
                // magic byte instead — still caught, as malformed.
                if buf.len() > FRAME_HEADER_LEN {
                    let span = buf.len() - FRAME_HEADER_LEN;
                    let bit = self.rng.range_u64(0, (span * 8) as u64) as usize;
                    buf[FRAME_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
                } else {
                    buf[0] ^= 1;
                }
                self.stats.corrupted += 1;
                let res = self.send_inner(&buf, deferred);
                self.recycle(buf);
                res
            }
            Fate::Duplicate => {
                self.stats.duplicated += 1;
                let res = self.send_inner(frame, deferred);
                if res.is_ok() {
                    // Second copy is best-effort: if the inner queue is
                    // full the duplicate just doesn't happen.
                    let _ = self.send_inner(frame, deferred);
                }
                res
            }
            Fate::Hold { ticks, jitter } => {
                if frame.len() > self.inner.mtu() {
                    // Let the inner link report TooBig now rather than
                    // at release, when the caller is gone.
                    return self.send_inner(frame, deferred);
                }
                let mut buf = self.take_spare(frame.len());
                buf.extend_from_slice(frame);
                self.held.push_back(Held { buf, hold: ticks });
                if jitter {
                    self.stats.jittered += 1;
                } else {
                    self.stats.reordered += 1;
                }
                Ok(())
            }
        }
    }
}

impl<L: DatagramLink> DatagramLink for ImpairedLink<L> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.tick_held();
        self.offer(frame, false)
    }

    fn send_frame_deferred(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.tick_held();
        self.offer(frame, true)
    }

    // send_run is deliberately left on the trait default (a per-frame
    // loop over send_frame), so the plan sees every frame.

    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        self.tick_held();
        out.reserve(frames.len());
        if self.blackout || !self.plan.pure_drop() {
            // General plans resolve a fate per frame; storage is never
            // taken (the contract allows taking none) — held and
            // corrupted frames are copied into recycled spares.
            for frame in frames.iter() {
                let res = self.offer(frame, true);
                out.push(res);
            }
            return;
        }
        // Pure-drop fast path (the DropLink shape): apply the policy
        // per frame, but forward maximal *kept* sub-runs to the inner
        // link in single calls so the zero-copy deferred batching
        // survives the wrapper. Dropped frames report Ok(()) in place
        // and leave their storage untouched — indistinguishable from
        // network loss, exactly like send_frame.
        let n = frames.len();
        let mut i = 0;
        while i < n {
            if is_data_frame(&frames[i]) && self.plan.loss.drops(self.stats.seen_data) {
                self.stats.seen_data += 1;
                self.stats.dropped_loss += 1;
                out.push(Ok(()));
                i += 1;
                continue;
            }
            // Extend the kept sub-run, consuming data indices as we go,
            // up to (not including) the next dropped data frame.
            let mut j = i;
            loop {
                if is_data_frame(&frames[j]) {
                    self.stats.seen_data += 1;
                } else {
                    self.stats.seen_control += 1;
                }
                j += 1;
                if j >= n
                    || (is_data_frame(&frames[j]) && self.plan.loss.drops(self.stats.seen_data))
                {
                    break;
                }
            }
            self.inner.send_run_owned(&mut frames[i..j], out);
            i = j;
        }
    }

    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        self.inner.recv_run(bufs, lens)
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        self.inner.recv_frame(buf)
    }

    fn mtu(&self) -> usize {
        self.inner.mtu()
    }

    fn coalesce_hint(&self) -> bool {
        self.inner.coalesce_hint()
    }

    fn flush(&mut self) -> usize {
        self.tick_held();
        // Refill the shaping bucket: flush is the wrapper's pump-cadence
        // clock (once per server pump / reactor poll), so `rate` is
        // "bytes of capacity per pump" — deterministic, no wall clock.
        if self.plan.shaped() {
            self.tokens = (self.tokens + self.plan.shape_rate).min(self.plan.shape_burst);
        }
        self.inner.flush()
    }

    fn backlog(&self) -> usize {
        self.inner.backlog() + self.held.len()
    }

    fn link_dead(&self) -> bool {
        self.inner.link_dead()
    }

    fn revive(&mut self) -> bool {
        // Revival is the inner link's problem — the impairment plan
        // (and its deterministic RNG state) survives the socket swap,
        // so a rejoined channel flows straight back into the same
        // chaos schedule.
        self.inner.revive()
    }

    fn tx_evidence(&self) -> Option<stripe_link::TxEvidence> {
        if !self.plan.shaped() {
            // Transparent for capacity purposes: the inner link's
            // counters (if any) are the best evidence, but the chaos
            // layer's own drops are real carried-traffic loss.
            return self.inner.tx_evidence().map(|mut ev| {
                ev.dropped += self.stats.dropped_total();
                ev
            });
        }
        // Shaped: the policer knows the carried load exactly — this is
        // the ground truth the estimator must converge to.
        let s = &self.stats;
        Some(stripe_link::TxEvidence {
            frames: s.seen_data - s.dropped_loss - s.dropped_partition - s.dropped_shaped,
            bytes: s.shaped_bytes,
            dropped: s.dropped_total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_control_into, encode_data_into, encode_data_summed_into};
    use stripe_core::control::Control;
    use stripe_link::datagram_pair;

    fn data_frame(byte: u8) -> Vec<u8> {
        let mut f = Vec::new();
        encode_data_into(&[byte, byte, byte, byte], &mut f);
        f
    }

    fn drain<L: DatagramLink>(rx: &mut L) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 512];
        let mut got = Vec::new();
        while let Some(n) = rx.recv_frame(&mut buf) {
            got.push(buf[..n].to_vec());
        }
        got
    }

    #[test]
    fn none_plan_is_transparent() {
        let (a, mut b) = datagram_pair(256, 64);
        let mut link = ImpairedLink::new(a, ChaosPlan::none(), 1);
        for i in 0..10u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        assert_eq!(drain(&mut b).len(), 10);
        let s = link.snapshot();
        assert_eq!(s.seen_data, 10);
        assert_eq!(s.dropped_total(), 0);
        assert_eq!(s.corrupted + s.duplicated + s.reordered + s.jittered, 0);
    }

    #[test]
    fn same_seed_replays_the_same_impairments() {
        let plan = || {
            ChaosPlan::none()
                .loss_bernoulli(200_000)
                .corrupt(100_000)
                .duplicate(100_000)
                .reorder(100_000, 3)
        };
        let run = |seed: u64| {
            let (a, mut b) = datagram_pair(256, 4096);
            let mut link = ImpairedLink::new(a, plan(), seed);
            for i in 0..200u8 {
                link.send_frame(&data_frame(i)).unwrap();
            }
            link.drain_held();
            (link.snapshot(), drain(&mut b))
        };
        let (s1, got1) = run(42);
        let (s2, got2) = run(42);
        assert_eq!(s1, s2);
        assert_eq!(got1, got2);
        let (s3, _) = run(43);
        assert_ne!(s1, s3, "different seed should impair differently");
    }

    #[test]
    fn bernoulli_loss_rate_is_roughly_right() {
        let (a, _b) = datagram_pair(2048, 1 << 15);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().loss_bernoulli(300_000), 7);
        for i in 0..10_000u32 {
            link.send_frame(&data_frame(i as u8)).unwrap();
        }
        let lost = link.snapshot().dropped_loss;
        assert!((2_600..=3_400).contains(&lost), "lost {lost}");
    }

    #[test]
    fn reorder_holds_then_releases_everything() {
        let (a, mut b) = datagram_pair(256, 4096);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().reorder(500_000, 4), 3);
        const N: usize = 100;
        for i in 0..N {
            link.send_frame(&data_frame(i as u8)).unwrap();
        }
        link.drain_held();
        assert_eq!(link.held_frames(), 0);
        let got = drain(&mut b);
        assert_eq!(got.len(), N, "reorder must never lose frames");
        let s = link.snapshot();
        assert!(s.reordered > 0, "plan at 50% must reorder something");
        assert_eq!(s.released, s.reordered);
        // The arrival order is a permutation of the send order.
        let mut seen: Vec<u8> = got.iter().map(|f| f[FRAME_HEADER_LEN]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..N as u8).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_actually_reorders() {
        let (a, mut b) = datagram_pair(256, 4096);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().reorder(300_000, 4), 11);
        for i in 0..100u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        link.drain_held();
        let order: Vec<u8> = drain(&mut b).iter().map(|f| f[FRAME_HEADER_LEN]).collect();
        let sorted = {
            let mut s = order.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(order, sorted, "expected at least one inversion");
    }

    #[test]
    fn duplicates_arrive_twice() {
        let (a, mut b) = datagram_pair(256, 4096);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().duplicate(500_000), 5);
        for i in 0..100u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        let s = link.snapshot();
        assert!(s.duplicated > 0);
        assert_eq!(drain(&mut b).len() as u64, 100 + s.duplicated);
    }

    #[test]
    fn corruption_flips_exactly_one_body_bit() {
        let (a, mut b) = datagram_pair(256, 4096);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().corrupt(PPM_SCALE), 9);
        let mut sent = Vec::new();
        encode_data_summed_into(&[0xAA; 32], &mut sent);
        link.send_frame(&sent).unwrap();
        assert_eq!(link.snapshot().corrupted, 1);
        let got = drain(&mut b);
        assert_eq!(got.len(), 1, "corrupted frames are forwarded, not dropped");
        let diff: u32 = sent
            .iter()
            .zip(&got[0])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(&got[0][..FRAME_HEADER_LEN], &sent[..FRAME_HEADER_LEN]);
        use crate::frame::{try_decode, DecodeError};
        assert_eq!(
            try_decode(&got[0]),
            Err(DecodeError::Corrupt),
            "checksummed decode must catch the flip"
        );
    }

    #[test]
    fn partition_drops_control_too() {
        let (a, mut b) = datagram_pair(256, 4096);
        let mut link = ImpairedLink::new(a, ChaosPlan::none().partition(2, 4), 1);
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 1 }, &mut ctl);
        link.send_frame(&data_frame(0)).unwrap(); // index 0: passes
        link.send_frame(&data_frame(1)).unwrap(); // index 1: passes
        link.send_frame(&data_frame(2)).unwrap(); // index 2: dark
        link.send_frame(&ctl).unwrap(); // control during partition: dark
        link.send_frame(&data_frame(3)).unwrap(); // index 3: dark
        link.send_frame(&ctl).unwrap(); // control after: passes
        link.send_frame(&data_frame(4)).unwrap(); // index 4: passes
        let s = link.snapshot();
        assert_eq!(s.dropped_partition, 3);
        assert_eq!(drain(&mut b).len(), 4);
    }

    #[test]
    fn active_window_quiesces_probabilistic_chaos() {
        let (a, mut b) = datagram_pair(2048, 1 << 15);
        let plan = ChaosPlan::none().loss_bernoulli(PPM_SCALE).active(0, 50);
        let mut link = ImpairedLink::new(a, plan, 2);
        for i in 0..100u8 {
            link.send_frame(&data_frame(i)).unwrap();
        }
        assert_eq!(link.snapshot().dropped_loss, 50);
        let got = drain(&mut b);
        assert_eq!(got.len(), 50, "everything after the window survives");
        assert!(got.iter().all(|f| f[FRAME_HEADER_LEN] >= 50));
    }

    #[test]
    fn send_run_owned_matches_per_frame_for_general_plans() {
        let plan = || {
            ChaosPlan::none()
                .loss_bernoulli(150_000)
                .corrupt(100_000)
                .duplicate(100_000)
        };
        let make = || (0..50u8).map(data_frame).collect::<Vec<_>>();
        let (a1, mut b1) = datagram_pair(256, 4096);
        let (a2, mut b2) = datagram_pair(256, 4096);
        let mut per_frame = ImpairedLink::new(a1, plan(), 77);
        let mut batched = ImpairedLink::new(a2, plan(), 77);
        for f in &make() {
            per_frame.send_frame(f).unwrap();
        }
        let mut owned = make();
        let mut out = Vec::new();
        batched.send_run_owned(&mut owned, &mut out);
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(per_frame.snapshot(), batched.snapshot());
        assert_eq!(drain(&mut b1), drain(&mut b2));
        // Storage untouched for the general path.
        assert!(owned.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn shaping_polices_to_the_bucket() {
        let (a, mut b) = datagram_pair(256, 4096);
        let frame = data_frame(0);
        let wire = frame.len() as u64;
        // Bucket of exactly 3 frames, refill of 2 frames per flush.
        let plan = ChaosPlan::none().shape(2 * wire, 3 * wire);
        let mut link = ImpairedLink::new(a, plan, 1);
        for _ in 0..10 {
            link.send_frame(&frame).unwrap();
        }
        let s = link.snapshot();
        assert_eq!(s.dropped_shaped, 7, "burst of 3 passes, rest policed");
        assert_eq!(s.shaped_bytes, 3 * wire);
        assert_eq!(drain(&mut b).len(), 3);
        // One flush refills 2 frames of credit; the next burst carries
        // exactly 2 more.
        link.flush();
        for _ in 0..10 {
            link.send_frame(&frame).unwrap();
        }
        let s = link.snapshot();
        assert_eq!(s.dropped_shaped, 7 + 8);
        assert_eq!(s.shaped_bytes, 5 * wire);
        assert_eq!(drain(&mut b).len(), 2);
        assert_eq!(s.seen_data, 20);
        assert_eq!(s.dropped_total(), 15);
    }

    #[test]
    fn shaping_exempts_control_frames() {
        let (a, mut b) = datagram_pair(256, 4096);
        let frame = data_frame(0);
        let plan = ChaosPlan::none().shape(1, frame.len() as u64);
        let mut link = ImpairedLink::new(a, plan, 1);
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 7 }, &mut ctl);
        link.send_frame(&frame).unwrap(); // spends the whole bucket
        link.send_frame(&frame).unwrap(); // policed
        for _ in 0..5 {
            link.send_frame(&ctl).unwrap(); // control rides free
        }
        let s = link.snapshot();
        assert_eq!(s.dropped_shaped, 1);
        assert_eq!(s.seen_control, 5);
        assert_eq!(drain(&mut b).len(), 6, "1 data + 5 control arrive");
    }

    #[test]
    fn asymmetric_shaping_reproduces_capacity_split() {
        // Two links, 2:1 rates, identical offered load and flush
        // cadence: carried bytes must split exactly 2:1 once past the
        // initial burst transient.
        let frame = data_frame(0);
        let wire = frame.len() as u64;
        let carried = |rate_frames: u64| {
            let (a, _b) = datagram_pair(256, 1 << 14);
            let plan = ChaosPlan::none().shape(rate_frames * wire, rate_frames * wire);
            let mut link = ImpairedLink::new(a, plan, 1);
            for _ in 0..100 {
                for _ in 0..8 {
                    link.send_frame(&frame).unwrap();
                }
                link.flush();
            }
            link.snapshot().shaped_bytes
        };
        let fast = carried(4);
        let slow = carried(2);
        assert_eq!(fast, slow * 2, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn send_run_owned_shapes_like_per_frame() {
        let frame_len = data_frame(0).len() as u64;
        let plan = || ChaosPlan::none().shape(2 * frame_len, 3 * frame_len);
        let make = || (0..20u8).map(data_frame).collect::<Vec<_>>();
        let (a1, mut b1) = datagram_pair(256, 4096);
        let (a2, mut b2) = datagram_pair(256, 4096);
        let mut per_frame = ImpairedLink::new(a1, plan(), 3);
        let mut batched = ImpairedLink::new(a2, plan(), 3);
        for f in &make() {
            per_frame.send_frame(f).unwrap();
        }
        let mut owned = make();
        let mut out = Vec::new();
        batched.send_run_owned(&mut owned, &mut out);
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(per_frame.snapshot(), batched.snapshot());
        assert!(per_frame.snapshot().dropped_shaped > 0);
        assert_eq!(drain(&mut b1), drain(&mut b2));
    }

    #[test]
    fn conservation_accounting_closes() {
        let (a, mut b) = datagram_pair(2048, 1 << 15);
        let plan = ChaosPlan::none()
            .loss_bernoulli(100_000)
            .duplicate(50_000)
            .reorder(100_000, 5)
            .partition(200, 240)
            .shape(32, 64);
        let mut link = ImpairedLink::new(a, plan, 13);
        const N: u64 = 1_000;
        for i in 0..N {
            link.send_frame(&data_frame(i as u8)).unwrap();
            if i % 8 == 0 {
                link.flush();
            }
        }
        link.drain_held();
        let s = link.snapshot();
        let arrived = drain(&mut b).len() as u64;
        assert_eq!(s.seen_data, N);
        assert!(
            s.dropped_shaped > 0,
            "plan must exercise the policer: {s:?}"
        );
        assert_eq!(
            arrived,
            N - s.dropped_total() + s.duplicated,
            "sent = delivered - duplicates + counted drops: {s:?}"
        );
    }
}
