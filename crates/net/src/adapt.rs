//! Adaptive quantum control: estimators + tuner + the retune handshake,
//! bundled for the reactor to drive.
//!
//! The pieces are all elsewhere — per-channel online estimators in
//! [`crate::est`], the rate→quantum objective in
//! [`stripe_core::sched::tuner`], the epoch'd announce/ack protocol in
//! [`stripe_core::retune`] — and this module is the glue that makes
//! them a control loop:
//!
//! 1. every reactor poll feeds each channel's cumulative
//!    [`TxEvidence`] and probe timestamps into its
//!    [`ChannelEstimator`];
//! 2. on a periodic estimation tick, rate estimates become shares
//!    ([`rate_shares`](crate::est::rate_shares)), shares become a
//!    quantum proposal ([`QuantumTuner::propose_into`]), and a proposal
//!    that clears the deadband becomes an epoch'd
//!    [`Control::QuantumAnnounce`](stripe_core::control::Control::QuantumAnnounce)
//!    flooded over the live channels — while the same quanta are
//!    scheduled on the local scheduler at the same effective round;
//! 3. [`Control::QuantumAck`](stripe_core::control::Control::QuantumAck)s
//!    collected off the reverse path retire the handshake; unacked
//!    announcements retransmit on a timer.
//!
//! At most one retune is in flight at a time: a new proposal waits for
//! the previous handshake to complete (or supersede it on the next
//! tick), so sender and receiver never juggle two pending quanta
//! schedules. The fairness bound holds across every retune because both
//! ends apply the change at the same round boundary — see
//! [`stripe_core::retune`] for the argument.

use stripe_core::control::{Control, Epoch};
use stripe_core::retune::{RetuneProgress, RetuneSender};
use stripe_core::sched::tuner::QuantumTuner;
use stripe_core::types::ChannelId;
use stripe_link::TxEvidence;
use stripe_netsim::{SimDuration, SimTime};

use crate::est::{rate_shares, ChannelEstimator};
use crate::reactor::Periodic;

/// Tuning for the adaptive control loop.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// EWMA gain for the goodput/loss estimators.
    pub gain: f64,
    /// Smallest quantum the tuner may assign (floor of the envelope).
    pub min_quantum: i64,
    /// Largest quantum the tuner may assign (the fairness bound of
    /// Theorem 3.2 scales with the largest quantum, so this caps the
    /// reordering the tuner can introduce).
    pub max_quantum: i64,
    /// Relative deadband in parts-per-million: proposals within this
    /// of the quanta in force are suppressed (no retune churn).
    pub deadband_ppm: u64,
    /// Estimation/retune cadence.
    pub interval: SimDuration,
    /// How many rounds ahead of the scan an announced change takes
    /// effect — same role as the membership lead.
    pub announce_lead_rounds: u64,
    /// Retransmit an unacked announcement this often.
    pub retransmit_interval: SimDuration,
}

impl AdaptiveConfig {
    /// A config derived from the estimation interval: 256..=16384 byte
    /// quantum envelope, 10% deadband, announcements two rounds ahead,
    /// retransmit every interval.
    pub fn with_interval(interval: SimDuration) -> Self {
        Self {
            gain: crate::est::DEFAULT_GAIN,
            min_quantum: 256,
            max_quantum: 16 * 1024,
            deadband_ppm: 100_000,
            interval,
            announce_lead_rounds: 2,
            retransmit_interval: interval,
        }
    }
}

/// Counters for the adaptive loop, under the workspace snapshot
/// convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveSnapshot {
    /// Transmit-evidence samples absorbed across all channels.
    pub tx_samples: u64,
    /// RTT samples absorbed across all channels.
    pub rtt_samples: u64,
    /// Retune handshakes begun (announcements flooded).
    pub retunes: u64,
    /// Quantum acks absorbed.
    pub retune_acks: u64,
    /// Retune handshakes fully acked.
    pub retunes_complete: u64,
    /// Announcement retransmissions.
    pub retransmits: u64,
    /// Proposals suppressed by the deadband (loop converged).
    pub suppressed: u64,
}

/// What the reactor should do after an adaptive tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptiveStep {
    /// Nothing due.
    Idle,
    /// A new retune: schedule `quanta` locally at the effective round
    /// the reactor computes, then flood the announcement.
    Announce,
    /// The in-flight announcement wants retransmission.
    Retransmit,
}

/// The adaptive control loop's state: one estimator per channel, the
/// quantum tuner, and the sender half of the retune handshake. The
/// reactor owns the wiring (see [`PathReactor::poll`]); this type owns
/// the decisions.
///
/// [`PathReactor::poll`]: crate::reactor::PathReactor::poll
#[derive(Debug)]
pub struct AdaptiveTuner {
    cfg: AdaptiveConfig,
    ests: Vec<ChannelEstimator>,
    tuner: QuantumTuner,
    sender: RetuneSender,
    /// Quanta in force (or being announced). Starts as the scheduler's
    /// initial quanta so the deadband compares against reality.
    quanta: Vec<i64>,
    /// Scratch: per-channel rate shares.
    shares: Vec<f64>,
    /// Scratch: the tuner's latest proposal.
    proposal: Vec<i64>,
    tick: Periodic,
    last_retransmit: SimTime,
    stats: AdaptiveSnapshot,
}

impl AdaptiveTuner {
    /// An adaptive loop over `initial_quanta.len()` channels, starting
    /// from the quanta the scheduler was built with (the deadband
    /// measures proposals against them).
    ///
    /// # Panics
    /// Panics on an empty or non-positive initial quanta vector, or a
    /// nonsensical envelope (see [`QuantumTuner::new`]).
    pub fn new(initial_quanta: &[i64], cfg: AdaptiveConfig, now: SimTime) -> Self {
        assert!(!initial_quanta.is_empty(), "at least one channel");
        assert!(
            initial_quanta.iter().all(|&q| q > 0),
            "initial quanta must be positive"
        );
        Self {
            ests: initial_quanta
                .iter()
                .map(|_| ChannelEstimator::new(cfg.gain))
                .collect(),
            tuner: QuantumTuner::new(cfg.min_quantum, cfg.max_quantum, cfg.deadband_ppm),
            sender: RetuneSender::new(initial_quanta.len()),
            quanta: initial_quanta.to_vec(),
            shares: Vec::with_capacity(initial_quanta.len()),
            proposal: Vec::with_capacity(initial_quanta.len()),
            tick: Periodic::new(now, cfg.interval),
            last_retransmit: now,
            cfg,
            stats: AdaptiveSnapshot::default(),
        }
    }

    /// Absorb one cumulative transmit-evidence reading for `channel`.
    pub fn on_tx_evidence(&mut self, channel: ChannelId, now_ns: u64, ev: TxEvidence) {
        let before = self.ests[channel].tx_samples();
        self.ests[channel].on_tx_sample(now_ns, ev);
        self.stats.tx_samples += self.ests[channel].tx_samples() - before;
    }

    /// A probe left on `channel` carrying `nonce`.
    pub fn on_probe_sent(&mut self, channel: ChannelId, nonce: u64, now_ns: u64) {
        self.ests[channel].on_probe_sent(nonce, now_ns);
    }

    /// A probe ack arrived on `channel` carrying `nonce`.
    pub fn on_probe_ack(&mut self, channel: ChannelId, nonce: u64, now_ns: u64) {
        let before = self.ests[channel].rtt_samples();
        self.ests[channel].on_probe_ack(nonce, now_ns);
        self.stats.rtt_samples += self.ests[channel].rtt_samples() - before;
    }

    /// A [`Control::QuantumAck`] arrived on `channel`.
    ///
    /// [`Control::QuantumAck`]: stripe_core::control::Control::QuantumAck
    pub fn on_quantum_ack(&mut self, channel: ChannelId, epoch: Epoch) {
        match self.sender.on_ack(channel, epoch) {
            RetuneProgress::Pending => self.stats.retune_acks += 1,
            RetuneProgress::Complete => {
                self.stats.retune_acks += 1;
                self.stats.retunes_complete += 1;
            }
            RetuneProgress::Ignored => {}
        }
    }

    /// Decide what is due at `now`. Called once per reactor poll; the
    /// reactor executes the returned step (it owns the path access the
    /// execution needs).
    pub fn step(&mut self, now: SimTime) -> AdaptiveStep {
        if self.tick.fire(now) && !self.sender.in_progress() && self.propose() {
            return AdaptiveStep::Announce;
        }
        if self.sender.in_progress()
            && now
                .as_nanos()
                .saturating_sub(self.last_retransmit.as_nanos())
                >= self.cfg.retransmit_interval.as_nanos()
        {
            return AdaptiveStep::Retransmit;
        }
        AdaptiveStep::Idle
    }

    /// Run the estimators through the tuner. True when a retune past
    /// the deadband is warranted (the proposal is parked in scratch for
    /// [`begin_announce`](Self::begin_announce)).
    fn propose(&mut self) -> bool {
        // No retune until every channel has a live rate estimate: the
        // equal-share fallback would otherwise drag all quanta to the
        // envelope floor before the first real measurement.
        if !self.ests.iter().all(|e| e.primed()) {
            return false;
        }
        // An idle path (all rates zero) proposes nothing either: the
        // all-minimum target it would produce says "no information",
        // not "shrink every quantum".
        if !self.ests.iter().any(|e| e.goodput_bps() > 0.0) {
            return false;
        }
        rate_shares(&self.ests, &mut self.shares);
        if self
            .tuner
            .propose_into(&self.shares, &self.quanta, &mut self.proposal)
        {
            true
        } else {
            self.stats.suppressed += 1;
            false
        }
    }

    /// Commit the parked proposal: it becomes the quanta in force, a
    /// new epoch begins, and the shared announcement is returned for
    /// the reactor to flood over `live` channels (and schedule locally
    /// at the same `effective_round`).
    pub fn begin_announce(&mut self, effective_round: u64, live: &[bool], now: SimTime) -> Control {
        self.quanta.clear();
        self.quanta.extend_from_slice(&self.proposal);
        self.sender
            .begin_announce(&self.quanta, effective_round, live);
        self.last_retransmit = now;
        self.stats.retunes += 1;
        self.sender
            .current_announcement()
            .expect("announcement just begun")
    }

    /// The in-flight announcement for retransmission, if any; stamps
    /// the retransmit clock and counts it.
    pub fn retransmission(&mut self, now: SimTime) -> Option<Control> {
        let msg = self.sender.current_announcement()?;
        self.last_retransmit = now;
        self.stats.retransmits += 1;
        Some(msg)
    }

    /// Channels still awaiting the current announcement's ack.
    pub fn awaiting_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.sender.awaiting_channels()
    }

    /// Whether a retune handshake is in flight.
    pub fn in_progress(&self) -> bool {
        self.sender.in_progress()
    }

    /// How many rounds ahead of the scan announced changes take effect.
    pub fn announce_lead_rounds(&self) -> u64 {
        self.cfg.announce_lead_rounds
    }

    /// The quanta currently in force (or being announced).
    pub fn quanta(&self) -> &[i64] {
        &self.quanta
    }

    /// The per-channel estimators (inspection).
    pub fn estimators(&self) -> &[ChannelEstimator] {
        &self.ests
    }

    /// The retune sender (epoch inspection).
    pub fn retune_sender(&self) -> &RetuneSender {
        &self.sender
    }

    /// Adaptive-loop counters.
    pub fn stats(&self) -> AdaptiveSnapshot {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(frames: u64, bytes: u64) -> TxEvidence {
        TxEvidence {
            frames,
            bytes,
            dropped: 0,
        }
    }

    fn cfg_ms(interval_ms: u64) -> AdaptiveConfig {
        AdaptiveConfig::with_interval(SimDuration::from_millis(interval_ms))
    }

    /// Feed a clean 4:2:1 rate split; the first due tick announces a
    /// proportional retune, acks complete it, and the quanta in force
    /// reflect the split.
    #[test]
    fn converges_to_announced_retune() {
        let mut ad = AdaptiveTuner::new(&[1500, 1500, 1500], cfg_ms(10), SimTime::ZERO);
        // Two samples per channel prime every estimator: rates 4:2:1.
        for step in 0..2u64 {
            let t = step * 1_000_000_000;
            ad.on_tx_evidence(0, t, evidence(step * 400, step * 400_000));
            ad.on_tx_evidence(1, t, evidence(step * 200, step * 200_000));
            ad.on_tx_evidence(2, t, evidence(step * 100, step * 100_000));
        }
        assert_eq!(ad.step(SimTime::from_millis(5)), AdaptiveStep::Idle);
        assert_eq!(ad.step(SimTime::from_millis(10)), AdaptiveStep::Announce);
        let msg = ad.begin_announce(7, &[true, true, true], SimTime::from_millis(10));
        let Control::QuantumAnnounce { epoch, quanta, .. } = msg else {
            panic!("not an announcement");
        };
        assert_eq!(epoch, 1);
        // Proportional: slowest at the floor, others scaled 4:2:1.
        assert_eq!(quanta[2], 256);
        assert_eq!(quanta[1], 512);
        assert_eq!(quanta[0], 1024);
        assert!(ad.in_progress());
        ad.on_quantum_ack(0, 1);
        ad.on_quantum_ack(1, 1);
        ad.on_quantum_ack(2, 1);
        assert!(!ad.in_progress());
        let s = ad.stats();
        assert_eq!((s.retunes, s.retune_acks, s.retunes_complete), (1, 3, 1));
        assert_eq!(ad.quanta(), &[1024, 512, 256]);
        // The loop has converged: the next tick suppresses.
        assert_eq!(ad.step(SimTime::from_millis(20)), AdaptiveStep::Idle);
        assert_eq!(ad.stats().suppressed, 1);
    }

    /// No retune fires while any channel's estimator is unprimed — the
    /// equal-share fallback must not drag quanta to the floor.
    #[test]
    fn unprimed_estimators_hold_fire() {
        let mut ad = AdaptiveTuner::new(&[1500, 1500], cfg_ms(10), SimTime::ZERO);
        // Only channel 0 ever reports.
        ad.on_tx_evidence(0, 0, evidence(0, 0));
        ad.on_tx_evidence(0, 1_000_000_000, evidence(100, 100_000));
        assert_eq!(ad.step(SimTime::from_millis(10)), AdaptiveStep::Idle);
        assert_eq!(ad.stats().retunes, 0);
        assert_eq!(ad.quanta(), &[1500, 1500]);
    }

    /// An unacked announcement retransmits on its timer; a stale ack
    /// does not retire it.
    #[test]
    fn unacked_announcement_retransmits() {
        let mut ad = AdaptiveTuner::new(&[1500, 1500], cfg_ms(10), SimTime::ZERO);
        for step in 0..2u64 {
            let t = step * 1_000_000_000;
            ad.on_tx_evidence(0, t, evidence(step * 400, step * 400_000));
            ad.on_tx_evidence(1, t, evidence(step * 100, step * 100_000));
        }
        assert_eq!(ad.step(SimTime::from_millis(10)), AdaptiveStep::Announce);
        ad.begin_announce(5, &[true, true], SimTime::from_millis(10));
        ad.on_quantum_ack(0, 99); // stale epoch: ignored
        assert!(ad.in_progress());
        assert_eq!(ad.step(SimTime::from_millis(15)), AdaptiveStep::Idle);
        assert_eq!(ad.step(SimTime::from_millis(20)), AdaptiveStep::Retransmit);
        let msg = ad.retransmission(SimTime::from_millis(20)).unwrap();
        assert!(matches!(msg, Control::QuantumAnnounce { epoch: 1, .. }));
        assert_eq!(ad.awaiting_channels().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(ad.stats().retransmits, 1);
        // While in flight, ticks do not start a second handshake.
        assert_eq!(ad.step(SimTime::from_millis(30)), AdaptiveStep::Retransmit);
        assert_eq!(ad.stats().retunes, 1);
    }
}
