//! The real-socket logical receiver: physical reception off N datagram
//! links into the shared resequencing engine — implemented, since the
//! multi-flow redesign, as *flow 0* of a
//! [`FlowDemux`](crate::demux::FlowDemux).
//!
//! [`NetLogicalReceiver`] wraps a demux whose population is capped at
//! one flow, pre-instantiated at build. Version-1 (untagged) frames
//! route to flow 0 by definition of the codec, so a legacy sender's
//! traffic lands exactly where it always did: data and markers into the
//! flow's resequencer, probes/membership answered on the reverse path
//! of the same link. Behaviour, counters, and the zero-allocation story
//! are unchanged from the dedicated single-flow receiver — the PR 2–6
//! test suites run against this wrapper unmodified.
//!
//! The zero-allocation story: every datagram lands in a buffer taken
//! from a [`BufPool`]; data payloads travel through the resequencer as
//! [`PooledBuf`] views (no copy); the consumer hands storage back via
//! [`recycle`](NetLogicalReceiver::recycle). Control frames give their
//! buffer back immediately after decode. Steady state, nothing
//! allocates — measured by the `alloc_counting` integration test.
//!
//! [`BufPool`]: crate::pool::BufPool

use stripe_core::receiver::{ReceiverSnapshot, RxBatch};
use stripe_core::sched::CausalScheduler;
use stripe_core::types::ChannelId;
use stripe_link::DatagramLink;
use stripe_netsim::SimTime;
use stripe_transport::StripedSink;

use crate::demux::FlowDemux;
use crate::pool::{BufPool, PooledBuf};

/// Receive-side network counters, complementing the resequencer's own
/// [`ReceiverSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetRxSnapshot {
    /// Frames received across all channels.
    pub frames: u64,
    /// Data frames routed into the resequencer.
    pub data_frames: u64,
    /// Control frames (markers included) decoded.
    pub control_frames: u64,
    /// Frames dropped because they failed to decode (bad magic, version,
    /// kind, or control body) — the real-world stand-in for checksum
    /// discard.
    pub dropped_malformed: u64,
    /// Structurally valid data frames whose CRC-8 trailer did not match
    /// the payload (see [`crate::frame::KIND_DATA_SUMMED`]): bit-flipped
    /// in flight, caught, never delivered.
    pub dropped_corrupt: u64,
    /// Control replies transmitted on the reverse path.
    pub replies_sent: u64,
    /// Control replies that could not be transmitted (backpressure).
    pub replies_lost: u64,
    /// §5 flushes performed in response to sender reset requests.
    pub resets: u64,
    /// Desync alerts escalated to the sender (armed detector only).
    pub desync_alerts_sent: u64,
}

/// Builder for [`NetLogicalReceiver`].
#[derive(Debug)]
pub struct NetLogicalReceiverBuilder<S: CausalScheduler, L: DatagramLink> {
    sched: Option<S>,
    links: Vec<L>,
    cap_per_channel: usize,
    pool_initial: usize,
    stall_timeout_ns: Option<u64>,
    incarnation: Option<u64>,
    desync: Option<stripe_core::reset::DesyncDetector>,
}

impl<S: CausalScheduler, L: DatagramLink> Default for NetLogicalReceiverBuilder<S, L> {
    fn default() -> Self {
        Self {
            sched: None,
            links: Vec::new(),
            cap_per_channel: 1 << 14,
            pool_initial: 64,
            stall_timeout_ns: None,
            incarnation: None,
            desync: None,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> NetLogicalReceiverBuilder<S, L> {
    /// The simulation scheduler — an identically configured, fresh copy
    /// of the sender's. Required.
    pub fn scheduler(mut self, sched: S) -> Self {
        self.sched = Some(sched);
        self
    }

    /// The member links, one per scheduler channel, connected to the
    /// sender's. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Per-channel resequencer buffer depth. Defaults to 16384.
    pub fn capacity_per_channel(mut self, cap: usize) -> Self {
        self.cap_per_channel = cap;
        self
    }

    /// Receive buffers to pre-allocate in the pool. Defaults to 64.
    pub fn pool_buffers(mut self, n: usize) -> Self {
        self.pool_initial = n;
        self
    }

    /// Arm the head-of-line stall detector (see
    /// [`stripe_core::receiver::LogicalReceiver::set_stall_timeout`]).
    pub fn stall_timeout_ns(mut self, timeout_ns: u64) -> Self {
        self.stall_timeout_ns = Some(timeout_ns);
        self
    }

    /// Pin the incarnation nonce reported in probe acks (see
    /// [`FlowDemuxBuilder::incarnation`](crate::demux::FlowDemuxBuilder::incarnation)).
    /// Defaults to a fresh [`stripe_core::reset::fresh_incarnation`].
    pub fn incarnation(mut self, incarnation: u64) -> Self {
        self.incarnation = Some(incarnation);
        self
    }

    /// Arm the self-stabilization monitor (see
    /// [`FlowDemuxBuilder::desync_detector`](crate::demux::FlowDemuxBuilder::desync_detector)).
    pub fn desync_detector(mut self, detector: stripe_core::reset::DesyncDetector) -> Self {
        self.desync = Some(detector);
        self
    }
}

impl<S: CausalScheduler + Clone, L: DatagramLink> NetLogicalReceiverBuilder<S, L> {
    /// Assemble the receiver: a one-flow [`FlowDemux`] with flow 0
    /// pre-instantiated. Pool buffers are sized to the largest link MTU
    /// so any frame fits.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied or the link count differs
    /// from the scheduler's channel count.
    pub fn build(self) -> NetLogicalReceiver<S, L> {
        let sched = self
            .sched
            .expect("NetLogicalReceiverBuilder needs a scheduler");
        let mut demux_builder = FlowDemux::builder()
            .scheduler(sched)
            .links(self.links)
            .capacity_per_channel(self.cap_per_channel)
            .pool_buffers(self.pool_initial)
            .max_flows(1);
        if let Some(t) = self.stall_timeout_ns {
            demux_builder = demux_builder.stall_timeout_ns(t);
        }
        if let Some(inc) = self.incarnation {
            demux_builder = demux_builder.incarnation(inc);
        }
        if let Some(det) = self.desync {
            demux_builder = demux_builder.desync_detector(det);
        }
        let mut demux = demux_builder.build();
        assert!(demux.touch_flow(0), "a fresh demux admits flow 0");
        NetLogicalReceiver { demux }
    }
}

/// Physical reception over real sockets, feeding the shared logical
/// resequencer — flow 0 of a one-flow [`FlowDemux`].
#[derive(Debug)]
pub struct NetLogicalReceiver<S: CausalScheduler, L: DatagramLink> {
    demux: FlowDemux<S, L>,
}

impl<S: CausalScheduler, L: DatagramLink> NetLogicalReceiver<S, L> {
    /// Start building: `NetLogicalReceiver::builder().scheduler(…)
    /// .links(…).build()`.
    pub fn builder() -> NetLogicalReceiverBuilder<S, L> {
        NetLogicalReceiverBuilder::default()
    }

    /// Drain every logically deliverable packet into `out` (cleared
    /// first, capacity kept). Returns the number delivered. Hand each
    /// consumed packet's storage back with [`recycle`](Self::recycle).
    pub fn poll_into(&mut self, out: &mut RxBatch<PooledBuf>) -> usize {
        self.demux.poll_flow_into(0, out)
    }

    /// Deliver the next in-order packet, if any.
    pub fn poll(&mut self) -> Option<PooledBuf> {
        self.demux.poll_flow(0)
    }

    /// Return a consumed packet's storage to the receive pool — the
    /// step that closes the zero-allocation cycle.
    pub fn recycle(&mut self, pkt: PooledBuf) {
        self.demux.recycle(pkt);
    }

    /// Pre-size the resequencer rings and the pool for steady-state
    /// operation at `per_channel` buffered arrivals (see
    /// [`stripe_core::receiver::LogicalReceiver::reserve`]).
    pub fn reserve(&mut self, per_channel: usize) {
        self.demux.reserve_flow(0, per_channel);
    }

    /// The head-of-line stall probe (see
    /// [`stripe_core::receiver::LogicalReceiver::stalled`]).
    pub fn stalled(&mut self, now: SimTime) -> Option<ChannelId> {
        self.demux.flow_stalled(0, now)
    }

    /// Network-side counters.
    pub fn net_stats(&self) -> NetRxSnapshot {
        let s = self.demux.net_stats();
        NetRxSnapshot {
            frames: s.frames,
            data_frames: s.data_frames,
            control_frames: s.control_frames,
            dropped_malformed: s.dropped_malformed,
            dropped_corrupt: s.dropped_corrupt,
            replies_sent: s.replies_sent,
            replies_lost: s.replies_lost,
            resets: s.resets,
            desync_alerts_sent: s.desync_alerts_sent,
        }
    }

    /// Per-channel undecodable-frame counts (indexed by channel id).
    pub fn malformed_by_channel(&self) -> &[u64] {
        self.demux.malformed_by_channel()
    }

    /// Per-channel checksum-discard counts (indexed by channel id).
    pub fn corrupt_by_channel(&self) -> &[u64] {
        self.demux.corrupt_by_channel()
    }

    /// Resequencer counters.
    pub fn stats(&self) -> ReceiverSnapshot {
        self.demux.flow_stats(0).expect("flow 0 always exists")
    }

    /// The wrapped sink (resequencer + responders) — flow 0's.
    pub fn sink(&self) -> &StripedSink<S, PooledBuf> {
        self.demux.flow_sink(0).expect("flow 0 always exists")
    }

    /// Mutable access to the wrapped sink.
    pub fn sink_mut(&mut self) -> &mut StripedSink<S, PooledBuf> {
        self.demux.flow_sink_mut(0).expect("flow 0 always exists")
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        self.demux.links()
    }

    /// Mutable access to the member links.
    pub fn links_mut(&mut self) -> &mut [L] {
        self.demux.links_mut()
    }

    /// The incarnation nonce this receiver reports in probe acks.
    pub fn incarnation(&self) -> u64 {
        self.demux.incarnation()
    }

    /// Take the links back out, consuming the receiver — the in-process
    /// endpoint-restart move: sockets survive, every resequencer state,
    /// responder epoch, and the incarnation die with the old instance.
    pub fn into_links(self) -> Vec<L> {
        self.demux.into_links()
    }

    /// The receive buffer pool (for high-water-mark inspection).
    pub fn pool(&self) -> &BufPool {
        self.demux.pool()
    }

    /// The underlying one-flow demux.
    pub fn demux(&self) -> &FlowDemux<S, L> {
        &self.demux
    }
}

impl<S: CausalScheduler + Clone, L: DatagramLink> NetLogicalReceiver<S, L> {
    /// One readiness pass at `now`: drain every channel's socket in
    /// batches (the `recvmmsg` seam), route each frame, transmit any
    /// control replies on the reverse path. Returns the number of frames
    /// received.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        self.demux.sweep(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{self, Frame, FRAME_HEADER_LEN};
    use crate::path::NetStripedPath;
    use bytes::Bytes;
    use stripe_core::control::Control;
    use stripe_core::sched::Srr;
    use stripe_core::sender::MarkerConfig;
    use stripe_link::{datagram_pair, TestDatagramLink, TxError};
    use stripe_transport::TxBatch;

    fn linked_pair(
        markers: MarkerConfig,
    ) -> (
        NetStripedPath<Srr, TestDatagramLink>,
        NetLogicalReceiver<Srr, TestDatagramLink>,
    ) {
        let (a0, b0) = datagram_pair(2048, 4096);
        let (a1, b1) = datagram_pair(2048, 4096);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(markers)
            .links(vec![a0, a1])
            .build();
        let rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .incarnation(9)
            .build();
        (path, rx)
    }

    /// Lossless end to end over in-memory datagram links: exact FIFO
    /// (Theorem 4.1), payload bytes intact.
    #[test]
    fn lossless_fifo_end_to_end() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::every_rounds(4));
        let mut pkts = Vec::new();
        let mut out = TxBatch::new();
        let mut batch = RxBatch::new();
        let mut got = Vec::new();
        for burst in 0..40u64 {
            for k in 0..10u64 {
                let id = burst * 10 + k;
                let len = 40 + (id as usize * 97) % 1200;
                let mut payload = vec![0u8; len];
                payload[..8].copy_from_slice(&id.to_be_bytes());
                pkts.push(Bytes::from(payload));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                got.push(u64::from_be_bytes(pb.as_slice()[..8].try_into().unwrap()));
                rx.recycle(pb);
            }
        }
        assert_eq!(got, (0..400).collect::<Vec<_>>());
        assert_eq!(rx.net_stats().dropped_malformed, 0);
        assert_eq!(rx.stats().dropped_overflow, 0);
    }

    /// Probes arriving at the receiver are answered with acks on the
    /// reverse path of the same channel.
    #[test]
    fn probe_is_acked_on_reverse_path() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::disabled());
        use stripe_transport::ControlPath;
        ControlPath::transmit_control(
            &mut path,
            SimTime::ZERO,
            1,
            Control::Probe { nonce: 0xBEEF },
        );
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().replies_sent, 1);
        // The ack is waiting on the sender's channel-1 socket.
        let mut buf = [0u8; 2048];
        let n = path.links_mut()[1].recv_frame(&mut buf).expect("ack frame");
        assert_eq!(
            frame::decode(&buf[..n]),
            Some(Frame::Control(Control::ProbeAck {
                nonce: 0xBEEF,
                incarnation: 9
            }))
        );
    }

    /// Malformed datagrams are counted and dropped without disturbing
    /// the stream.
    #[test]
    fn malformed_frames_dropped_and_counted() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::disabled());
        // Inject garbage straight onto the wire, then a real packet.
        if let Some(e) = rx.links_mut()[0].send_frame(&[1, 2, 3]).err() {
            panic!("{e:?}")
        }
        // (send_frame on the *receiver's* link goes sender-ward; inject
        // on the path's peer instead by sending from the path side.)
        let mut pkts = vec![Bytes::from(vec![0x42u8; 64])];
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().data_frames, 1);
        let mut batch = RxBatch::new();
        rx.poll_into(&mut batch);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.as_slice()[0].as_slice(), &[0x42u8; 64][..]);
    }

    /// A bit-flipped summed frame is caught by its CRC-8 trailer and
    /// dropped — counted per channel, never delivered — while clean
    /// summed frames flow through untouched.
    #[test]
    fn corrupt_summed_frames_are_discarded_not_delivered() {
        let (a0, b0) = datagram_pair(2048, 4096);
        let (a1, b1) = datagram_pair(2048, 4096);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .integrity(true)
            .build();
        let mut rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .build();
        // A summed frame with one payload bit flipped, injected on
        // channel 0's wire.
        let mut evil = Vec::new();
        frame::encode_data_summed_into(&[0x55u8; 32], &mut evil);
        evil[FRAME_HEADER_LEN + 4] ^= 0x01;
        path.links_mut()[0].send_frame(&evil).unwrap();
        // Followed by clean traffic.
        let mut pkts = vec![Bytes::from(vec![0x66u8; 32])];
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        rx.sweep(SimTime::ZERO);

        let s = rx.net_stats();
        assert_eq!(s.dropped_corrupt, 1, "flip caught by the trailer");
        assert_eq!(s.dropped_malformed, 0);
        assert_eq!(rx.corrupt_by_channel()[0], 1, "blamed on its channel");
        assert_eq!(rx.corrupt_by_channel()[1], 0);
        assert_eq!(s.data_frames, 1, "the clean frame still routed");
        let mut batch = RxBatch::new();
        rx.poll_into(&mut batch);
        // Only the clean payload is ever deliverable, trailer stripped.
        for pb in batch.drain() {
            assert_eq!(pb.as_slice(), &[0x66u8; 32][..]);
            rx.recycle(pb);
        }
    }

    /// The pool's high-water mark stops growing once the working set is
    /// warm: receive, deliver, recycle, repeat.
    #[test]
    fn pool_stops_growing_in_steady_state() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::every_rounds(4));
        let mut pkts = Vec::new();
        let mut out = TxBatch::new();
        let mut batch = RxBatch::new();
        for burst in 0..5u64 {
            for _ in 0..16 {
                pkts.push(Bytes::from(vec![7u8; 300]));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                rx.recycle(pb);
            }
        }
        let warm = rx.pool().allocated();
        for burst in 5..50u64 {
            for _ in 0..16 {
                pkts.push(Bytes::from(vec![7u8; 300]));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                rx.recycle(pb);
            }
        }
        assert_eq!(rx.pool().allocated(), warm, "pool grew past warmup");
    }

    /// Reply backpressure is counted, not panicked on.
    #[test]
    fn reply_backpressure_counted() {
        let (a0, b0) = datagram_pair(2048, 0); // zero-capacity reverse queue
        let path_links = vec![a0];
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(path_links)
            .build();
        let mut rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(vec![b0])
            .build();
        use stripe_transport::ControlPath;
        let t =
            ControlPath::transmit_control(&mut path, SimTime::ZERO, 0, Control::Probe { nonce: 1 });
        // The probe itself could not enter the zero-capacity queue.
        assert_eq!(t.error, Some(TxError::QueueFull));
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().frames, 0);
    }
}
