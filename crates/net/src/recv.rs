//! The real-socket logical receiver: physical reception off N datagram
//! links into the shared resequencing engine.
//!
//! [`NetLogicalReceiver`] owns one [`DatagramLink`] per striped channel
//! and a [`StripedSink`] (the PR-1 receiver endpoint: a
//! [`LogicalReceiver`] plus the probe/membership responders). A
//! [`sweep`](NetLogicalReceiver::sweep) is one readiness pass: drain
//! every socket, decode each frame with the shared codec, route data
//! and markers into the resequencer, answer control on the reverse path
//! of the same link. Then [`poll_into`](NetLogicalReceiver::poll_into)
//! drains whatever became logically deliverable.
//!
//! The zero-allocation story: every datagram lands in a buffer taken
//! from a [`BufPool`]; data payloads travel through the resequencer as
//! [`PooledBuf`] views (no copy); the consumer hands storage back via
//! [`recycle`](NetLogicalReceiver::recycle). Control frames give their
//! buffer back immediately after decode. Steady state, nothing
//! allocates — measured by the `alloc_counting` integration test.
//!
//! [`LogicalReceiver`]: stripe_core::receiver::LogicalReceiver

use stripe_core::receiver::{Arrival, ReceiverSnapshot, RxBatch};
use stripe_core::sched::CausalScheduler;
use stripe_core::types::ChannelId;
use stripe_link::DatagramLink;
use stripe_netsim::SimTime;
use stripe_transport::StripedSink;

use crate::frame::{self, Frame, FRAME_HEADER_LEN};
use crate::pool::{BufPool, PooledBuf};

/// Receive-side network counters, complementing the resequencer's own
/// [`ReceiverSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetRxSnapshot {
    /// Frames received across all channels.
    pub frames: u64,
    /// Data frames routed into the resequencer.
    pub data_frames: u64,
    /// Control frames (markers included) decoded.
    pub control_frames: u64,
    /// Frames dropped because they failed to decode (bad magic, version,
    /// kind, or control body) — the real-world stand-in for checksum
    /// discard.
    pub dropped_malformed: u64,
    /// Structurally valid data frames whose CRC-8 trailer did not match
    /// the payload (see [`crate::frame::KIND_DATA_SUMMED`]): bit-flipped
    /// in flight, caught, never delivered.
    pub dropped_corrupt: u64,
    /// Control replies transmitted on the reverse path.
    pub replies_sent: u64,
    /// Control replies that could not be transmitted (backpressure).
    pub replies_lost: u64,
}

/// Builder for [`NetLogicalReceiver`].
#[derive(Debug)]
pub struct NetLogicalReceiverBuilder<S: CausalScheduler, L: DatagramLink> {
    sched: Option<S>,
    links: Vec<L>,
    cap_per_channel: usize,
    pool_initial: usize,
    stall_timeout_ns: Option<u64>,
}

impl<S: CausalScheduler, L: DatagramLink> Default for NetLogicalReceiverBuilder<S, L> {
    fn default() -> Self {
        Self {
            sched: None,
            links: Vec::new(),
            cap_per_channel: 1 << 14,
            pool_initial: 64,
            stall_timeout_ns: None,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> NetLogicalReceiverBuilder<S, L> {
    /// The simulation scheduler — an identically configured, fresh copy
    /// of the sender's. Required.
    pub fn scheduler(mut self, sched: S) -> Self {
        self.sched = Some(sched);
        self
    }

    /// The member links, one per scheduler channel, connected to the
    /// sender's. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Per-channel resequencer buffer depth. Defaults to 16384.
    pub fn capacity_per_channel(mut self, cap: usize) -> Self {
        self.cap_per_channel = cap;
        self
    }

    /// Receive buffers to pre-allocate in the pool. Defaults to 64.
    pub fn pool_buffers(mut self, n: usize) -> Self {
        self.pool_initial = n;
        self
    }

    /// Arm the head-of-line stall detector (see
    /// [`stripe_core::receiver::LogicalReceiver::set_stall_timeout`]).
    pub fn stall_timeout_ns(mut self, timeout_ns: u64) -> Self {
        self.stall_timeout_ns = Some(timeout_ns);
        self
    }

    /// Assemble the receiver. Pool buffers are sized to the largest link
    /// MTU so any frame fits.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied or the link count differs
    /// from the scheduler's channel count.
    pub fn build(self) -> NetLogicalReceiver<S, L> {
        let sched = self
            .sched
            .expect("NetLogicalReceiverBuilder needs a scheduler");
        assert_eq!(
            self.links.len(),
            sched.channels(),
            "one link per scheduler channel"
        );
        let buf_len = self
            .links
            .iter()
            .map(|l| l.mtu())
            .max()
            .expect("non-empty links");
        let mut sink_builder = StripedSink::builder()
            .scheduler(sched)
            .capacity_per_channel(self.cap_per_channel);
        if let Some(t) = self.stall_timeout_ns {
            sink_builder = sink_builder.stall_timeout_ns(t);
        }
        let channels = self.links.len();
        NetLogicalReceiver {
            sink: sink_builder.build(),
            links: self.links,
            pool: BufPool::new(buf_len, self.pool_initial),
            ctl_buf: Vec::new(),
            recv_bufs: Vec::new(),
            recv_lens: Vec::new(),
            stats: NetRxSnapshot::default(),
            malformed_by_channel: vec![0; channels],
            corrupt_by_channel: vec![0; channels],
        }
    }
}

/// Physical reception over real sockets, feeding the shared logical
/// resequencer.
#[derive(Debug)]
pub struct NetLogicalReceiver<S: CausalScheduler, L: DatagramLink> {
    sink: StripedSink<S, PooledBuf>,
    links: Vec<L>,
    pool: BufPool,
    ctl_buf: Vec<u8>,
    /// Scratch buffer array for batched receives (`recvmmsg` seam):
    /// pool buffers waiting to be filled, refilled as frames are routed.
    recv_bufs: Vec<Vec<u8>>,
    recv_lens: Vec<usize>,
    stats: NetRxSnapshot,
    /// Per-channel undecodable-frame counts — a single noisy channel
    /// (a flaky NIC, a corrupting middlebox) shows up here long before
    /// it shifts the aggregate.
    malformed_by_channel: Vec<u64>,
    /// Per-channel checksum-discard counts (summed data frames only).
    corrupt_by_channel: Vec<u64>,
}

impl<S: CausalScheduler, L: DatagramLink> NetLogicalReceiver<S, L> {
    /// Start building: `NetLogicalReceiver::builder().scheduler(…)
    /// .links(…).build()`.
    pub fn builder() -> NetLogicalReceiverBuilder<S, L> {
        NetLogicalReceiverBuilder::default()
    }

    /// Frames per [`DatagramLink::recv_run`] call in a sweep — the
    /// receive-side syscall batch width on mmsg-capable links.
    const RECV_RUN: usize = 32;

    /// One readiness pass at `now`: drain every channel's socket in
    /// [`Self::RECV_RUN`]-frame batches (the `recvmmsg` seam), route
    /// each frame, transmit any control replies on the reverse path.
    /// Returns the number of frames received.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let _ = now; // reserved for receive-timestamp plumbing
        while self.recv_bufs.len() < Self::RECV_RUN {
            self.recv_bufs.push(self.pool.take());
            self.recv_lens.push(0);
        }
        let mut received = 0;
        for c in 0..self.links.len() {
            loop {
                let got = self.links[c].recv_run(&mut self.recv_bufs, &mut self.recv_lens);
                for i in 0..got {
                    // Swap a fresh pool buffer into the batch array and
                    // route the filled one (data keeps it, control and
                    // malformed return it) — still zero steady-state
                    // allocations, the pool just cycles.
                    let buf = std::mem::replace(&mut self.recv_bufs[i], self.pool.take());
                    let n = self.recv_lens[i];
                    received += 1;
                    self.stats.frames += 1;
                    self.route_frame(c, buf, n);
                }
                if got < Self::RECV_RUN {
                    break;
                }
            }
        }
        received
    }

    /// Route one received frame: data into the resequencer (keeping the
    /// pooled buffer), control through the sink's responders (returning
    /// the buffer at once).
    fn route_frame(&mut self, c: ChannelId, buf: Vec<u8>, n: usize) {
        match frame::try_decode(&buf[..n]) {
            Ok(Frame::Data(body)) => {
                // The body is a view into `buf` (summed frames exclude
                // their trailer); capture its extent, then keep the
                // storage as the packet.
                let len = body.len();
                self.stats.data_frames += 1;
                let pb = PooledBuf::new(buf, FRAME_HEADER_LEN, len);
                // On overflow the resequencer drops the arrival (counted
                // in its own snapshot); the buffer is freed with it.
                let _ = self.sink.on_arrival(c, Arrival::Data(pb));
            }
            Ok(Frame::Control(ctl)) => {
                self.stats.control_frames += 1;
                self.pool.put(buf);
                // Markers return no replies (and allocate nothing);
                // probes and membership answer on the reverse path.
                for (rc, reply) in self.sink.on_control(c, &ctl) {
                    frame::encode_control_into(&reply, &mut self.ctl_buf);
                    match self.links[rc].send_frame(&self.ctl_buf) {
                        Ok(()) => self.stats.replies_sent += 1,
                        Err(_) => self.stats.replies_lost += 1,
                    }
                }
            }
            Err(frame::DecodeError::Corrupt) => {
                self.stats.dropped_corrupt += 1;
                self.corrupt_by_channel[c] += 1;
                self.pool.put(buf);
            }
            Err(frame::DecodeError::Malformed) => {
                self.stats.dropped_malformed += 1;
                self.malformed_by_channel[c] += 1;
                self.pool.put(buf);
            }
        }
    }

    /// Drain every logically deliverable packet into `out` (cleared
    /// first, capacity kept). Returns the number delivered. Hand each
    /// consumed packet's storage back with [`recycle`](Self::recycle).
    pub fn poll_into(&mut self, out: &mut RxBatch<PooledBuf>) -> usize {
        self.sink.poll_into(out)
    }

    /// Deliver the next in-order packet, if any.
    pub fn poll(&mut self) -> Option<PooledBuf> {
        self.sink.poll()
    }

    /// Return a consumed packet's storage to the receive pool — the
    /// step that closes the zero-allocation cycle.
    pub fn recycle(&mut self, pkt: PooledBuf) {
        self.pool.put(pkt.into_inner());
    }

    /// Pre-size the resequencer rings and the pool for steady-state
    /// operation at `per_channel` buffered arrivals (see
    /// [`stripe_core::receiver::LogicalReceiver::reserve`]).
    pub fn reserve(&mut self, per_channel: usize) {
        self.sink.receiver_mut().reserve(per_channel);
    }

    /// The head-of-line stall probe (see
    /// [`stripe_core::receiver::LogicalReceiver::stalled`]).
    pub fn stalled(&mut self, now: SimTime) -> Option<ChannelId> {
        self.sink.stalled(now)
    }

    /// Network-side counters.
    pub fn net_stats(&self) -> NetRxSnapshot {
        self.stats
    }

    /// Per-channel undecodable-frame counts (indexed by channel id).
    pub fn malformed_by_channel(&self) -> &[u64] {
        &self.malformed_by_channel
    }

    /// Per-channel checksum-discard counts (indexed by channel id).
    pub fn corrupt_by_channel(&self) -> &[u64] {
        &self.corrupt_by_channel
    }

    /// Resequencer counters.
    pub fn stats(&self) -> ReceiverSnapshot {
        self.sink.stats()
    }

    /// The wrapped sink (resequencer + responders).
    pub fn sink(&self) -> &StripedSink<S, PooledBuf> {
        &self.sink
    }

    /// Mutable access to the wrapped sink.
    pub fn sink_mut(&mut self) -> &mut StripedSink<S, PooledBuf> {
        &mut self.sink
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        &self.links
    }

    /// Mutable access to the member links.
    pub fn links_mut(&mut self) -> &mut [L] {
        &mut self.links
    }

    /// The receive buffer pool (for high-water-mark inspection).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::NetStripedPath;
    use bytes::Bytes;
    use stripe_core::control::Control;
    use stripe_core::sched::Srr;
    use stripe_core::sender::MarkerConfig;
    use stripe_link::{datagram_pair, TestDatagramLink, TxError};
    use stripe_transport::TxBatch;

    fn linked_pair(
        markers: MarkerConfig,
    ) -> (
        NetStripedPath<Srr, TestDatagramLink>,
        NetLogicalReceiver<Srr, TestDatagramLink>,
    ) {
        let (a0, b0) = datagram_pair(2048, 4096);
        let (a1, b1) = datagram_pair(2048, 4096);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(markers)
            .links(vec![a0, a1])
            .build();
        let rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .build();
        (path, rx)
    }

    /// Lossless end to end over in-memory datagram links: exact FIFO
    /// (Theorem 4.1), payload bytes intact.
    #[test]
    fn lossless_fifo_end_to_end() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::every_rounds(4));
        let mut pkts = Vec::new();
        let mut out = TxBatch::new();
        let mut batch = RxBatch::new();
        let mut got = Vec::new();
        for burst in 0..40u64 {
            for k in 0..10u64 {
                let id = burst * 10 + k;
                let len = 40 + (id as usize * 97) % 1200;
                let mut payload = vec![0u8; len];
                payload[..8].copy_from_slice(&id.to_be_bytes());
                pkts.push(Bytes::from(payload));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                got.push(u64::from_be_bytes(pb.as_slice()[..8].try_into().unwrap()));
                rx.recycle(pb);
            }
        }
        assert_eq!(got, (0..400).collect::<Vec<_>>());
        assert_eq!(rx.net_stats().dropped_malformed, 0);
        assert_eq!(rx.stats().dropped_overflow, 0);
    }

    /// Probes arriving at the receiver are answered with acks on the
    /// reverse path of the same channel.
    #[test]
    fn probe_is_acked_on_reverse_path() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::disabled());
        use stripe_transport::ControlPath;
        ControlPath::transmit_control(
            &mut path,
            SimTime::ZERO,
            1,
            Control::Probe { nonce: 0xBEEF },
        );
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().replies_sent, 1);
        // The ack is waiting on the sender's channel-1 socket.
        let mut buf = [0u8; 2048];
        let n = path.links_mut()[1].recv_frame(&mut buf).expect("ack frame");
        assert_eq!(
            frame::decode(&buf[..n]),
            Some(Frame::Control(Control::ProbeAck { nonce: 0xBEEF }))
        );
    }

    /// Malformed datagrams are counted and dropped without disturbing
    /// the stream.
    #[test]
    fn malformed_frames_dropped_and_counted() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::disabled());
        // Inject garbage straight onto the wire, then a real packet.
        if let Some(e) = rx.links_mut()[0].send_frame(&[1, 2, 3]).err() {
            panic!("{e:?}")
        }
        // (send_frame on the *receiver's* link goes sender-ward; inject
        // on the path's peer instead by sending from the path side.)
        let mut pkts = vec![Bytes::from(vec![0x42u8; 64])];
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().data_frames, 1);
        let mut batch = RxBatch::new();
        rx.poll_into(&mut batch);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.as_slice()[0].as_slice(), &[0x42u8; 64][..]);
    }

    /// A bit-flipped summed frame is caught by its CRC-8 trailer and
    /// dropped — counted per channel, never delivered — while clean
    /// summed frames flow through untouched.
    #[test]
    fn corrupt_summed_frames_are_discarded_not_delivered() {
        let (a0, b0) = datagram_pair(2048, 4096);
        let (a1, b1) = datagram_pair(2048, 4096);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .integrity(true)
            .build();
        let mut rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .build();
        // A summed frame with one payload bit flipped, injected on
        // channel 0's wire.
        let mut evil = Vec::new();
        frame::encode_data_summed_into(&[0x55u8; 32], &mut evil);
        evil[FRAME_HEADER_LEN + 4] ^= 0x01;
        path.links_mut()[0].send_frame(&evil).unwrap();
        // Followed by clean traffic.
        let mut pkts = vec![Bytes::from(vec![0x66u8; 32])];
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        rx.sweep(SimTime::ZERO);

        let s = rx.net_stats();
        assert_eq!(s.dropped_corrupt, 1, "flip caught by the trailer");
        assert_eq!(s.dropped_malformed, 0);
        assert_eq!(rx.corrupt_by_channel()[0], 1, "blamed on its channel");
        assert_eq!(rx.corrupt_by_channel()[1], 0);
        assert_eq!(s.data_frames, 1, "the clean frame still routed");
        let mut batch = RxBatch::new();
        rx.poll_into(&mut batch);
        // Only the clean payload is ever deliverable, trailer stripped.
        for pb in batch.drain() {
            assert_eq!(pb.as_slice(), &[0x66u8; 32][..]);
            rx.recycle(pb);
        }
    }

    /// The pool's high-water mark stops growing once the working set is
    /// warm: receive, deliver, recycle, repeat.
    #[test]
    fn pool_stops_growing_in_steady_state() {
        let (mut path, mut rx) = linked_pair(MarkerConfig::every_rounds(4));
        let mut pkts = Vec::new();
        let mut out = TxBatch::new();
        let mut batch = RxBatch::new();
        for burst in 0..5u64 {
            for _ in 0..16 {
                pkts.push(Bytes::from(vec![7u8; 300]));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                rx.recycle(pb);
            }
        }
        let warm = rx.pool().allocated();
        for burst in 5..50u64 {
            for _ in 0..16 {
                pkts.push(Bytes::from(vec![7u8; 300]));
            }
            path.send_batch(SimTime::from_millis(burst), &mut pkts, &mut out);
            rx.sweep(SimTime::from_millis(burst));
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                rx.recycle(pb);
            }
        }
        assert_eq!(rx.pool().allocated(), warm, "pool grew past warmup");
    }

    /// Reply backpressure is counted, not panicked on.
    #[test]
    fn reply_backpressure_counted() {
        let (a0, b0) = datagram_pair(2048, 0); // zero-capacity reverse queue
        let path_links = vec![a0];
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(path_links)
            .build();
        let mut rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(vec![b0])
            .build();
        use stripe_transport::ControlPath;
        let t =
            ControlPath::transmit_control(&mut path, SimTime::ZERO, 0, Control::Probe { nonce: 1 });
        // The probe itself could not enter the zero-capacity queue.
        assert_eq!(t.error, Some(TxError::QueueFull));
        rx.sweep(SimTime::ZERO);
        assert_eq!(rx.net_stats().frames, 0);
    }
}
