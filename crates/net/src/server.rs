//! The multi-flow stripe server: thousands of logical flows multiplexed
//! over one shared set of datagram channels.
//!
//! One [`StripeServer`] owns N links and a slab of flows. Each open flow
//! gets its own [`StripingSender`] (per-flow SRR deficit state and
//! marker clock — the receiver simulates each flow independently) and a
//! bounded queue of pre-encoded frames. Two schedulers compose:
//!
//! - **inter-flow**: a [`Drr`] ring picks which flow sends next and for
//!   how many bytes (its quantum), giving backlogged flows a weighted
//!   fair share of the aggregate regardless of packet sizes;
//! - **intra-flow**: the flow's own SRR picks which *channel* carries
//!   each of those frames, exactly as a single-flow path would.
//!
//! On the wire every data frame and marker is a version-2 flow-tagged
//! frame (see [`crate::frame::FRAME_VERSION_FLOW`]); global control —
//! probes, membership, quantum updates — stays untagged version 1, so
//! failover, lifecycle, and epoch'd membership remain flow-agnostic and
//! byte-identical to the single-flow protocol. A server built with
//! [`legacy_frames`](StripeServerBuilder::legacy_frames) emits version-1
//! frames for everything, which is how
//! [`NetStripedPath`](crate::path::NetStripedPath) is the one-flow
//! special case of this type.
//!
//! Admission is bounded: past
//! [`max_flows`](StripeServerBuilder::max_flows) new flows are *parked*
//! (open, but not yet allowed to send) until an active flow closes;
//! past [`park_capacity`](StripeServerBuilder::park_capacity) opens are
//! rejected outright. Per-flow queues are bounded too
//! ([`queue_frames`](StripeServerBuilder::queue_frames)), surfacing
//! backpressure to the producer of that one flow instead of letting it
//! starve the rest.
//!
//! The zero-allocation story matches the single-flow path: frames are
//! encoded once at [`enqueue`](StripeServer::enqueue) into recycled
//! buffers, handed to links by storage transfer
//! ([`DatagramLink::send_run_owned`]), and the swapped-back recycled
//! storage returns to the server's pool. Steady state allocates nothing
//! per packet.

use std::collections::VecDeque;

use stripe_core::control::Control;
use stripe_core::sched::{CausalScheduler, Drr};
use stripe_core::sender::{MarkerConfig, StripingSender};
use stripe_core::types::ChannelId;
use stripe_core::Marker;
use stripe_link::{DatagramLink, TxError};
use stripe_netsim::SimTime;
use stripe_transport::{ControlPath, ControlTransmission, PathSnapshot};

use crate::frame;

/// Dense flow identifier — the varint that rides every version-2 frame.
/// Slots are recycled on close; a [`FlowHandle`] carries a generation to
/// keep stale handles from touching a reused slot.
pub type FlowId = u32;

/// A capability to send on one open flow. Obtained from
/// [`StripeServer::open_flow`]; invalidated by
/// [`StripeServer::close_flow`] (any later use reports
/// [`FlowError::Closed`], even if the slot was reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowHandle {
    id: FlowId,
    gen: u32,
}

impl FlowHandle {
    /// The wire-visible flow id.
    pub fn id(&self) -> FlowId {
        self.id
    }
}

/// Why a flow operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// `open_flow` past both the active cap and the parking lot.
    AdmissionRejected,
    /// The flow is parked (admitted but waiting for an active slot);
    /// it cannot send yet.
    Parked,
    /// The flow's bounded frame queue is full — per-flow backpressure.
    Backpressure {
        /// How many of the flow's queued frames must be pumped out before
        /// an enqueue can succeed (always at least 1). A producer can use
        /// it to size its retry: wait until `queue_len` has dropped by
        /// this many, or just until the next pump.
        resume_hint: usize,
    },
    /// The handle does not name an open flow (closed, or never valid).
    Closed,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::AdmissionRejected => f.write_str("admission rejected: flow caps exhausted"),
            FlowError::Parked => f.write_str("flow is parked awaiting an active slot"),
            FlowError::Backpressure { resume_hint } => {
                write!(f, "flow queue full ({resume_hint} frame(s) must drain)")
            }
            FlowError::Closed => f.write_str("stale flow handle"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Per-flow counters, under the workspace snapshot convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowSnapshot {
    /// Frames accepted into the flow queue.
    pub enqueued: u64,
    /// Frames handed to links (errored hand-offs included, as in
    /// [`PathSnapshot::sent`]).
    pub sent: u64,
    /// Enqueues refused because the flow queue was full.
    pub dropped_backpressure: u64,
    /// Frames dropped at a full link transmit queue.
    pub dropped_queue: u64,
    /// Frames the link refused for any other reason.
    pub dropped_lost: u64,
    /// Markers transmitted for this flow.
    pub markers_sent: u64,
    /// Markers that never left.
    pub markers_lost: u64,
}

/// Server-wide counters: flow population, admission drops, and the
/// aggregate datapath [`PathSnapshot`] summed over every flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StripeServerSnapshot {
    /// Flows currently open and schedulable.
    pub flows_active: u64,
    /// Flows currently parked (admitted, awaiting an active slot).
    pub flows_parked: u64,
    /// Flows ever opened (parked included).
    pub flows_opened: u64,
    /// Flows closed.
    pub flows_closed: u64,
    /// `open_flow` calls rejected with both caps exhausted.
    pub dropped_admission: u64,
    /// Enqueues refused across all flows (per-flow backpressure).
    pub dropped_backpressure: u64,
    /// Aggregate datapath counters (same shape as the single-flow path).
    pub path: PathSnapshot,
}

/// One event produced by [`StripeServer::pump_into`]: a frame or marker
/// offered to a link, in offer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpEvent {
    /// A data frame left (or failed to leave) on `channel`.
    Data {
        /// The flow it belongs to.
        flow: FlowId,
        /// The channel its SRR chose.
        channel: ChannelId,
        /// Why it never left, if it didn't.
        error: Option<TxError>,
    },
    /// A marker rode (or failed to ride) `channel`.
    Marker {
        /// The flow whose marker clock fired.
        flow: FlowId,
        /// The channel the marker describes.
        channel: ChannelId,
        /// The marker itself.
        marker: Marker,
        /// Why it never left, if it didn't.
        error: Option<TxError>,
    },
}

/// One frame parked in a flow queue: encoded bytes plus the payload
/// length the schedulers account in (the receiver simulates with
/// payload lengths, so the sender must too).
#[derive(Debug)]
struct QueuedFrame {
    buf: Vec<u8>,
    payload_len: usize,
}

/// Per-flow state: the flow's own striping engine and pending frames.
#[derive(Debug)]
struct FlowState<S: CausalScheduler> {
    gen: u32,
    tx: StripingSender<S>,
    queue: VecDeque<QueuedFrame>,
    stats: FlowSnapshot,
    parked: bool,
}

/// Builder for [`StripeServer`] — the multi-flow extension of the
/// [`NetStripedPathBuilder`](crate::path::NetStripedPathBuilder)
/// vocabulary (`scheduler` / `markers` / `links` / `integrity`), plus
/// the flow-admission knobs.
#[derive(Debug)]
pub struct StripeServerBuilder<S: CausalScheduler, L: DatagramLink> {
    proto: Option<S>,
    markers: MarkerConfig,
    links: Vec<L>,
    integrity: bool,
    legacy_frames: bool,
    max_flows: usize,
    park_capacity: usize,
    queue_frames: usize,
    flow_quantum: i64,
}

impl<S: CausalScheduler, L: DatagramLink> Default for StripeServerBuilder<S, L> {
    fn default() -> Self {
        Self {
            proto: None,
            markers: MarkerConfig::disabled(),
            links: Vec::new(),
            integrity: false,
            legacy_frames: false,
            max_flows: 1 << 16,
            park_capacity: 1 << 10,
            queue_frames: 256,
            flow_quantum: 1 << 14,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> StripeServerBuilder<S, L> {
    /// The *prototype* channel scheduler: every flow gets an identically
    /// configured fresh clone of it. Required.
    pub fn scheduler(mut self, proto: S) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Per-flow marker emission policy. Defaults to
    /// [`MarkerConfig::disabled`].
    pub fn markers(mut self, cfg: MarkerConfig) -> Self {
        self.markers = cfg;
        self
    }

    /// The member links, one per scheduler channel. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Emit checksummed data frames (CRC-8 trailer), as in
    /// [`NetStripedPathBuilder::integrity`](crate::path::NetStripedPathBuilder::integrity).
    pub fn integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        self
    }

    /// Emit untagged version-1 frames instead of flow-tagged version-2
    /// ones. Only meaningful for a single-flow server talking to a
    /// legacy receiver — this is how [`NetStripedPath`] stays
    /// byte-identical to PR 3–6 on the wire.
    ///
    /// [`NetStripedPath`]: crate::path::NetStripedPath
    pub fn legacy_frames(mut self, on: bool) -> Self {
        self.legacy_frames = on;
        self
    }

    /// Active-flow cap: flows opened past it are parked. Defaults to
    /// 65536.
    pub fn max_flows(mut self, n: usize) -> Self {
        self.max_flows = n;
        self
    }

    /// Parking-lot capacity: opens past `max_flows + park_capacity` are
    /// rejected (`dropped_admission`). Defaults to 1024.
    pub fn park_capacity(mut self, n: usize) -> Self {
        self.park_capacity = n;
        self
    }

    /// Per-flow queue bound, in frames; an enqueue past it reports
    /// [`FlowError::Backpressure`]. Defaults to 256.
    pub fn queue_frames(mut self, n: usize) -> Self {
        self.queue_frames = n;
        self
    }

    /// DRR quantum: payload bytes a backlogged flow may send per
    /// inter-flow turn. Defaults to 16 KiB.
    ///
    /// # Panics
    /// Panics (in `build`) if non-positive.
    pub fn flow_quantum(mut self, q: i64) -> Self {
        self.flow_quantum = q;
        self
    }

    /// Assemble the server with no flows open.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied, the link count differs from
    /// the scheduler's channel count, `max_flows` is zero, or the flow
    /// quantum is non-positive.
    pub fn build(self) -> StripeServer<S, L> {
        let proto = self.proto.expect("StripeServerBuilder needs a scheduler");
        assert_eq!(
            self.links.len(),
            proto.channels(),
            "one link per scheduler channel"
        );
        assert!(self.max_flows > 0, "max_flows must be at least 1");
        let channels = self.links.len();
        StripeServer {
            links: self.links,
            proto,
            markers: self.markers,
            integrity: self.integrity,
            legacy_frames: self.legacy_frames,
            max_flows: self.max_flows,
            park_capacity: self.park_capacity,
            queue_frames: self.queue_frames,
            drr: Drr::new(self.flow_quantum),
            flows: Vec::new(),
            gens: Vec::new(),
            free_ids: Vec::new(),
            parked_order: VecDeque::new(),
            mask: vec![true; channels],
            mask_dirty: false,
            path_parked: false,
            last_quanta: Vec::new(),
            quanta_dirty: false,
            stats: StripeServerSnapshot::default(),
            buf_pool: Vec::new(),
            flow_pool: Vec::new(),
            turn_bufs: Vec::new(),
            turn_lens: Vec::new(),
            turn_frame_lens: Vec::new(),
            scratch_channels: Vec::new(),
            scratch_markers: Vec::new(),
            scratch_idle: Vec::new(),
            run_results: Vec::new(),
            last_data_len: vec![0; channels],
            ctl_buf: Vec::new(),
        }
    }
}

/// A multi-flow striping server bound to real datagram channels. See the
/// module docs for the architecture.
#[derive(Debug)]
pub struct StripeServer<S: CausalScheduler, L: DatagramLink> {
    links: Vec<L>,
    /// Prototype scheduler, cloned per flow.
    proto: S,
    markers: MarkerConfig,
    integrity: bool,
    legacy_frames: bool,
    max_flows: usize,
    park_capacity: usize,
    queue_frames: usize,
    /// Inter-flow scheduler over slab indices.
    drr: Drr,
    /// The flow slab: O(1) lookup by flow id, `None` in free slots.
    flows: Vec<Option<FlowState<S>>>,
    /// Per-slot generation, bumped on close so stale handles miss.
    gens: Vec<u32>,
    free_ids: Vec<FlowId>,
    /// FIFO of parked flows awaiting an active slot.
    parked_order: VecDeque<FlowId>,
    /// Latest channel live mask — applied to flows created after an
    /// epoch change (the receiver applies the same mask when it lazily
    /// creates the matching replica, so both simulations agree).
    mask: Vec<bool>,
    mask_dirty: bool,
    /// Path-wide park: every channel is dead (total blackout) or a §5
    /// reset is gating resume. Distinct from per-flow admission parking
    /// — here *no* flow may send, enqueues see backpressure, and the
    /// flows' schedulers freeze on their last live mask (a scheduler
    /// must never scan an empty mask). Control still flows, so probes
    /// can observe recovery. Cleared by the next non-empty mask.
    path_parked: bool,
    /// Latest per-channel quanta — applied to flows created after a live
    /// retune, mirroring `mask`/`mask_dirty` (the receiver replays the
    /// same quanta when it lazily creates the matching replica).
    last_quanta: Vec<i64>,
    quanta_dirty: bool,
    stats: StripeServerSnapshot,
    // Scratch, all recycled: the steady state allocates nothing.
    buf_pool: Vec<Vec<u8>>,
    /// Closed flows' state, reset and reused by the next open: under
    /// open/close churn the slab reaches a high-water mark of engines
    /// and queues and then cycles them without touching the allocator.
    flow_pool: Vec<FlowState<S>>,
    turn_bufs: Vec<Vec<u8>>,
    turn_lens: Vec<usize>,
    turn_frame_lens: Vec<usize>,
    scratch_channels: Vec<ChannelId>,
    scratch_markers: Vec<(usize, ChannelId, Marker)>,
    scratch_idle: Vec<(ChannelId, Marker)>,
    run_results: Vec<Result<(), TxError>>,
    /// Wire length of the last data frame sent per channel this pump —
    /// the GSO pad target for markers (see the single-flow path).
    last_data_len: Vec<usize>,
    ctl_buf: Vec<u8>,
}

impl<S: CausalScheduler + Clone, L: DatagramLink> StripeServer<S, L> {
    /// Open a new flow: clone the prototype scheduler, apply the current
    /// membership mask, and admit the flow — active if a slot is free,
    /// parked otherwise.
    pub fn open_flow(&mut self) -> Result<FlowHandle, FlowError> {
        let park = self.stats.flows_active as usize >= self.max_flows;
        if park && self.stats.flows_parked as usize >= self.park_capacity {
            self.stats.dropped_admission += 1;
            return Err(FlowError::AdmissionRejected);
        }
        let id = self.free_ids.pop().unwrap_or_else(|| {
            self.flows.push(None);
            self.gens.push(0);
            (self.flows.len() - 1) as FlowId
        });
        // Reuse a closed flow's engine and queue when one is pooled: a
        // reset sender is indistinguishable from a fresh clone, and the
        // churn path (open → traffic → close → open …) stays off the
        // allocator once the slab's high-water mark is reached.
        let mut f = match self.flow_pool.pop() {
            Some(mut f) => {
                f.tx.reset();
                f.stats = FlowSnapshot::default();
                f
            }
            None => FlowState {
                gen: 0,
                tx: StripingSender::new(self.proto.clone(), self.markers),
                queue: VecDeque::new(),
                stats: FlowSnapshot::default(),
                parked: false,
            },
        };
        if self.mask_dirty {
            // Same rule the receiver uses when it lazily creates this
            // flow's replica: schedule the mask one round ahead of the
            // fresh scheduler. Both sides clamp identically, so the
            // simulations stay in lockstep; any race with an in-flight
            // epoch change is healed by markers.
            let eff = f.tx.scheduler().round() + 1;
            f.tx.schedule_mask(eff, &self.mask);
        }
        if self.quanta_dirty {
            // Same replay rule for quanta: a flow born after a retune
            // starts under the tuned quanta from its first full round.
            let eff = f.tx.scheduler().round() + 1;
            f.tx.schedule_quanta(eff, &self.last_quanta);
        }
        f.gen = self.gens[id as usize];
        f.parked = park;
        self.flows[id as usize] = Some(f);
        if park {
            self.parked_order.push_back(id);
            self.stats.flows_parked += 1;
        } else {
            self.drr.register(id as usize);
            self.stats.flows_active += 1;
        }
        self.stats.flows_opened += 1;
        Ok(FlowHandle {
            id,
            gen: self.gens[id as usize],
        })
    }
}

impl<S: CausalScheduler, L: DatagramLink> StripeServer<S, L> {
    /// Start building: `StripeServer::builder().scheduler(…).links(…)
    /// .build()`.
    pub fn builder() -> StripeServerBuilder<S, L> {
        StripeServerBuilder::default()
    }

    fn state_of(&self, h: FlowHandle) -> Result<&FlowState<S>, FlowError> {
        self.flows
            .get(h.id as usize)
            .and_then(|s| s.as_ref())
            .filter(|f| f.gen == h.gen)
            .ok_or(FlowError::Closed)
    }

    /// Close a flow: drop its queued frames, free its slot, and unpark
    /// the oldest waiting flow if this one held an active slot.
    pub fn close_flow(&mut self, h: FlowHandle) -> Result<(), FlowError> {
        self.state_of(h)?;
        let mut f = self.flows[h.id as usize].take().expect("validated");
        for q in f.queue.drain(..) {
            self.buf_pool.push(q.buf);
        }
        self.gens[h.id as usize] = self.gens[h.id as usize].wrapping_add(1);
        self.free_ids.push(h.id);
        self.stats.flows_closed += 1;
        let parked = f.parked;
        self.flow_pool.push(f);
        if parked {
            self.stats.flows_parked -= 1;
            self.parked_order.retain(|&p| p != h.id);
            return Ok(());
        }
        self.drr.unregister(h.id as usize);
        self.stats.flows_active -= 1;
        // Hand the freed slot to the oldest parked flow.
        while let Some(pid) = self.parked_order.pop_front() {
            if let Some(pf) = self.flows[pid as usize].as_mut() {
                if pf.parked {
                    pf.parked = false;
                    self.drr.register(pid as usize);
                    self.stats.flows_parked -= 1;
                    self.stats.flows_active += 1;
                    break;
                }
            }
        }
        Ok(())
    }

    /// Whether the flow is parked (admitted but not yet schedulable).
    pub fn is_parked(&self, h: FlowHandle) -> Result<bool, FlowError> {
        self.state_of(h).map(|f| f.parked)
    }

    /// Frames currently queued on the flow.
    pub fn queue_len(&self, h: FlowHandle) -> Result<usize, FlowError> {
        self.state_of(h).map(|f| f.queue.len())
    }

    /// Whether the next [`enqueue`](Self::enqueue) on this flow would be
    /// refused — parked, or its queue at the bound. Lets a producer probe
    /// backpressure without paying for an encode-and-refuse round trip.
    pub fn would_block(&self, h: FlowHandle) -> Result<bool, FlowError> {
        self.state_of(h)
            .map(|f| self.path_parked || f.parked || f.queue.len() >= self.queue_frames)
    }

    /// Queue one payload on a flow: the frame is encoded here, once,
    /// into a recycled buffer (flow-tagged version 2, or version 1 under
    /// [`legacy_frames`](StripeServerBuilder::legacy_frames)), and waits
    /// for [`pump_into`](Self::pump_into) to schedule it. A full queue
    /// reports [`FlowError::Backpressure`] without touching the payload.
    pub fn enqueue(&mut self, h: FlowHandle, payload: &[u8]) -> Result<(), FlowError> {
        let f = self.state_of(h)?;
        if self.path_parked {
            // Blackout/reset park: bounded buffers stop admitting. The
            // hint is 1 — "try again after the next unpark", there is no
            // queue position to wait out.
            self.stats.dropped_backpressure += 1;
            let f = self.flows[h.id as usize].as_mut().expect("validated");
            f.stats.dropped_backpressure += 1;
            return Err(FlowError::Backpressure { resume_hint: 1 });
        }
        if f.parked {
            return Err(FlowError::Parked);
        }
        if f.queue.len() >= self.queue_frames {
            let resume_hint = f.queue.len() + 1 - self.queue_frames;
            self.stats.dropped_backpressure += 1;
            let f = self.flows[h.id as usize].as_mut().expect("validated");
            f.stats.dropped_backpressure += 1;
            return Err(FlowError::Backpressure { resume_hint });
        }
        let mut buf = self.buf_pool.pop().unwrap_or_default();
        match (self.legacy_frames, self.integrity) {
            (true, false) => frame::encode_data_into(payload, &mut buf),
            (true, true) => frame::encode_data_summed_into(payload, &mut buf),
            (false, false) => frame::encode_data_flow_into(h.id, payload, &mut buf),
            (false, true) => frame::encode_data_summed_flow_into(h.id, payload, &mut buf),
        }
        let f = self.flows[h.id as usize].as_mut().expect("validated");
        f.queue.push_back(QueuedFrame {
            buf,
            payload_len: payload.len(),
        });
        f.stats.enqueued += 1;
        self.drr.activate(h.id as usize);
        Ok(())
    }

    /// Drive the two-level scheduler: DRR turns across backlogged flows,
    /// each turn striping up to one quantum of that flow's frames
    /// through its own SRR onto the shared links. At most `budget` data
    /// frames leave. Events land in `events` (cleared first) in offer
    /// order; one flush per link submits everything the links deferred.
    /// Returns the number of data frames served.
    pub fn pump_into(&mut self, now: SimTime, budget: usize, events: &mut Vec<PumpEvent>) -> usize {
        let _ = now; // reserved for pacing
        events.clear();
        if self.path_parked {
            return 0;
        }
        for v in &mut self.last_data_len {
            *v = 0;
        }
        let mut served_total = 0usize;
        while served_total < budget {
            let Some(fid) = self.drr.begin_turn() else {
                break;
            };
            let flow_id = fid as FlowId;
            // Phase 1: pop the affordable prefix of the flow queue.
            self.turn_bufs.clear();
            self.turn_lens.clear();
            self.turn_frame_lens.clear();
            let mut budget_left = budget - served_total;
            {
                let f = self.flows[fid].as_mut().expect("active flow in ring");
                while budget_left > 0 {
                    let Some(front) = f.queue.front() else { break };
                    let cost = front.payload_len as i64;
                    if self.drr.deficit(fid) < cost {
                        break;
                    }
                    self.drr.charge(fid, cost);
                    let q = f.queue.pop_front().expect("front just checked");
                    self.turn_lens.push(q.payload_len);
                    self.turn_frame_lens.push(q.buf.len());
                    self.turn_bufs.push(q.buf);
                    budget_left -= 1;
                }
                // Phase 2: the flow's own SRR assigns channels/markers.
                f.tx.send_batch(
                    &self.turn_lens,
                    &mut self.scratch_channels,
                    &mut self.scratch_markers,
                );
            }
            // Phase 3: offer same-channel runs, breaking at marker
            // boundaries — identical run discipline to the single-flow
            // path, so per-channel FIFO (and hence marker recovery)
            // holds per flow.
            let n = self.turn_bufs.len();
            let (mut fq, mut fl, mut fms, mut fml) = (0u64, 0u64, 0u64, 0u64);
            let mut m = 0;
            let mut i = 0;
            while i < n {
                let ch = self.scratch_channels[i];
                let boundary = self.scratch_markers.get(m).map(|&(at, _, _)| at);
                let mut j = i + 1;
                while j < n && self.scratch_channels[j] == ch && boundary.is_none_or(|b| j <= b) {
                    j += 1;
                }
                self.run_results.clear();
                self.links[ch].send_run_owned(&mut self.turn_bufs[i..j], &mut self.run_results);
                for k in 0..(j - i) {
                    let error = self.run_results[k].err();
                    match error {
                        Some(TxError::QueueFull) => {
                            self.stats.path.dropped_queue += 1;
                            fq += 1;
                        }
                        Some(_) => {
                            self.stats.path.dropped_lost += 1;
                            fl += 1;
                        }
                        None => {}
                    }
                    events.push(PumpEvent::Data {
                        flow: flow_id,
                        channel: ch,
                        error,
                    });
                }
                self.last_data_len[ch] = self.turn_frame_lens[j - 1];
                while m < self.scratch_markers.len() && self.scratch_markers[m].0 < j {
                    let (_, c, mk) = self.scratch_markers[m];
                    m += 1;
                    let pad_to = if self.links[c].coalesce_hint() {
                        self.last_data_len[c]
                    } else {
                        0
                    };
                    let error = self.transmit_marker_frame(flow_id, c, mk, true, pad_to);
                    fms += 1;
                    if error.is_some() {
                        fml += 1;
                    }
                    events.push(PumpEvent::Marker {
                        flow: flow_id,
                        channel: c,
                        marker: mk,
                        error,
                    });
                }
                i = j;
            }
            served_total += n;
            self.stats.path.sent += n as u64;
            // Recycle the storage the links swapped back.
            self.buf_pool.append(&mut self.turn_bufs);
            let f = self.flows[fid].as_mut().expect("still open");
            f.stats.sent += n as u64;
            f.stats.dropped_queue += fq;
            f.stats.dropped_lost += fl;
            f.stats.markers_sent += fms;
            f.stats.markers_lost += fml;
            let backlogged = !f.queue.is_empty();
            self.drr.end_turn(fid, backlogged);
        }
        // One flush per link per pump: deferring links submit their
        // whole accumulated burst as mmsg batches here.
        for l in &mut self.links {
            l.flush();
        }
        served_total
    }

    /// Emit every open active flow's due marker batch immediately
    /// (timer-driven markers during idle periods). Events land in
    /// `events` (cleared first).
    pub fn send_idle_markers_into(&mut self, now: SimTime, events: &mut Vec<PumpEvent>) {
        let _ = now;
        events.clear();
        if self.path_parked {
            return;
        }
        for fid in 0..self.flows.len() {
            {
                let Some(f) = self.flows[fid].as_mut() else {
                    continue;
                };
                if f.parked {
                    continue;
                }
                self.scratch_idle.clear();
                f.tx.make_markers_into(&mut self.scratch_idle);
            }
            let mut lost = 0u64;
            for k in 0..self.scratch_idle.len() {
                let (c, mk) = self.scratch_idle[k];
                // Idle markers have no adjacent data to pad-match.
                let error = self.transmit_marker_frame(fid as FlowId, c, mk, false, 0);
                if error.is_some() {
                    lost += 1;
                }
                events.push(PumpEvent::Marker {
                    flow: fid as FlowId,
                    channel: c,
                    marker: mk,
                    error,
                });
            }
            let sent = self.scratch_idle.len() as u64;
            let f = self.flows[fid].as_mut().expect("still open");
            f.stats.markers_sent += sent;
            f.stats.markers_lost += lost;
        }
    }

    /// Encode and send one marker frame for `flow` on channel `c`.
    /// Deferred markers join the channel's parked burst (flushed at pump
    /// end); eager ones go out now. `pad_to > 0` requests the padded
    /// encoding stretched to that wire length (GSO-train preservation),
    /// ignored when it would not fit.
    fn transmit_marker_frame(
        &mut self,
        flow: FlowId,
        c: ChannelId,
        mk: Marker,
        deferred: bool,
        pad_to: usize,
    ) -> Option<TxError> {
        self.stats.path.markers_sent += 1;
        let ctl = Control::Marker(mk);
        let natural = if self.legacy_frames {
            frame::control_frame_len(&ctl)
        } else {
            frame::control_flow_frame_len(flow, &ctl)
        };
        if pad_to >= natural + frame::PAD_LEN_PREFIX && pad_to <= self.links[c].mtu() {
            if self.legacy_frames {
                frame::encode_control_padded_into(&ctl, pad_to, &mut self.ctl_buf);
            } else {
                frame::encode_control_padded_flow_into(flow, &ctl, pad_to, &mut self.ctl_buf);
            }
        } else if self.legacy_frames {
            frame::encode_control_into(&ctl, &mut self.ctl_buf);
        } else {
            frame::encode_control_flow_into(flow, &ctl, &mut self.ctl_buf);
        }
        let r = if deferred {
            self.links[c].send_frame_deferred(&self.ctl_buf)
        } else {
            self.links[c].send_frame(&self.ctl_buf)
        };
        if let Err(e) = r {
            self.stats.path.markers_lost += 1;
            return Some(e);
        }
        None
    }

    fn transmit_control_impl(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: &Control,
    ) -> (Option<SimTime>, Option<TxError>) {
        self.stats.path.control_sent += 1;
        // Global control stays untagged version 1: the failover plane is
        // flow-agnostic and byte-compatible with single-flow peers.
        frame::encode_control_into(ctl, &mut self.ctl_buf);
        match self.links[c].send_frame(&self.ctl_buf) {
            Ok(()) => (Some(now), None),
            Err(e) => {
                self.stats.path.control_lost += 1;
                (None, Some(e))
            }
        }
    }

    /// The striped *payload* MTU: minimum member frame MTU net of the
    /// worst-case framing overhead for this server's wire dialect.
    pub fn max_payload(&self) -> usize {
        let min_mtu = self.links.iter().map(|l| l.mtu()).min().expect("non-empty");
        let id_bound = (self.max_flows + self.park_capacity).saturating_sub(1) as u32;
        let mut overhead = if self.legacy_frames {
            frame::FRAME_HEADER_LEN
        } else {
            frame::FRAME_HEADER_LEN + frame::flow_id_len(id_bound)
        };
        if self.integrity {
            overhead += frame::SUM_TRAILER_LEN;
        }
        min_mtu.saturating_sub(overhead)
    }

    /// Try to drain every link's local backlog. Returns frames flushed.
    pub fn flush(&mut self) -> usize {
        self.links.iter_mut().map(|l| l.flush()).sum()
    }

    /// Frames parked across all link backlogs.
    pub fn backlog(&self) -> usize {
        self.links.iter().map(|l| l.backlog()).sum()
    }

    /// Server-wide counters.
    pub fn stats(&self) -> StripeServerSnapshot {
        self.stats
    }

    /// One flow's counters.
    pub fn flow_stats(&self, h: FlowHandle) -> Result<FlowSnapshot, FlowError> {
        self.state_of(h).map(|f| f.stats)
    }

    /// One flow's striping engine (fairness ledgers, marker counts).
    pub fn flow_sender(&self, h: FlowHandle) -> Result<&StripingSender<S>, FlowError> {
        self.state_of(h).map(|f| &f.tx)
    }

    /// Mutable access to one flow's striping engine.
    pub fn flow_sender_mut(&mut self, h: FlowHandle) -> Result<&mut StripingSender<S>, FlowError> {
        self.state_of(h)?;
        Ok(&mut self.flows[h.id as usize].as_mut().expect("validated").tx)
    }

    /// Is the server path-parked (total blackout, or a §5 reset gating
    /// resume)? While parked, enqueues report backpressure and pumps
    /// serve nothing; control still flows.
    pub fn parked(&self) -> bool {
        self.path_parked
    }

    /// Flush every flow's sender-side engine after a completed §5
    /// reset: schedulers, fairness ledgers, and marker clocks restart
    /// from zero, and pre-reset queued frames are discarded (the
    /// receiver flushed its replicas when it acked — old-epoch state
    /// must not leak into the new one). Flow handles stay valid; the
    /// post-reset re-announce re-teaches the current mask.
    pub fn reset_flows(&mut self) {
        for f in self.flows.iter_mut().flatten() {
            f.tx.reset();
            for q in f.queue.drain(..) {
                f.stats.dropped_lost += 1;
                self.buf_pool.push(q.buf);
            }
        }
        // Fresh engines start all-live on their original quanta, so the
        // replay state for late-opened flows resets with them.
        for m in &mut self.mask {
            *m = true;
        }
        self.mask_dirty = false;
        self.last_quanta.clear();
        self.quanta_dirty = false;
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        &self.links
    }

    /// Mutable access to the member links.
    pub fn links_mut(&mut self) -> &mut [L] {
        &mut self.links
    }

    /// Take the links back out, consuming the server.
    pub fn into_links(self) -> Vec<L> {
        self.links
    }
}

impl<S: CausalScheduler, L: DatagramLink> ControlPath for StripeServer<S, L> {
    fn channels(&self) -> usize {
        self.links.len()
    }

    fn current_round(&self) -> u64 {
        // The most advanced flow bounds how far any simulation has run;
        // announcing relative to it keeps the effective round in every
        // flow's future (laggards clamp to their own next boundary).
        self.flows
            .iter()
            .flatten()
            .map(|f| f.tx.scheduler().round())
            .max()
            .unwrap_or_else(|| self.proto.round())
    }

    fn schedule_mask(&mut self, effective_round: u64, live: &[bool]) {
        if !live.iter().any(|&l| l) {
            // The park contract (see [`ControlPath::schedule_mask`]):
            // an all-dead mask parks the whole server. The per-flow
            // schedulers never see it — they freeze on their last live
            // mask — and the stored replay mask stays non-empty so a
            // flow opened mid-blackout starts from the last live state.
            self.path_parked = true;
            return;
        }
        self.path_parked = false;
        self.mask.clear();
        self.mask.extend_from_slice(live);
        self.mask_dirty = live.iter().any(|&l| !l);
        for f in self.flows.iter_mut().flatten() {
            f.tx.schedule_mask(effective_round, live);
        }
    }

    fn schedule_quanta(&mut self, effective_round: u64, quanta: &[i64]) {
        self.last_quanta.clear();
        self.last_quanta.extend_from_slice(quanta);
        self.quanta_dirty = true;
        for f in self.flows.iter_mut().flatten() {
            f.tx.schedule_quanta(effective_round, quanta);
        }
    }

    fn transmit_control(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: Control,
    ) -> ControlTransmission {
        let (arrival, error) = self.transmit_control_impl(now, c, &ctl);
        ControlTransmission {
            channel: c,
            arrival,
            duplicate: None,
            ctl,
            error,
        }
    }

    fn transmit_control_ref(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: &Control,
    ) -> ControlTransmission {
        let (arrival, error) = self.transmit_control_impl(now, c, ctl);
        ControlTransmission {
            channel: c,
            arrival,
            duplicate: None,
            ctl: ctl.clone(),
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use stripe_core::sched::Srr;
    use stripe_link::{datagram_pair, TestDatagramLink};

    fn server(
        max_flows: usize,
        park: usize,
        queue: usize,
    ) -> (StripeServer<Srr, TestDatagramLink>, Vec<TestDatagramLink>) {
        let (a0, b0) = datagram_pair(2048, 1 << 12);
        let (a1, b1) = datagram_pair(2048, 1 << 12);
        let srv = StripeServer::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(MarkerConfig::every_rounds(4))
            .links(vec![a0, a1])
            .max_flows(max_flows)
            .park_capacity(park)
            .queue_frames(queue)
            .flow_quantum(2048)
            .build();
        (srv, vec![b0, b1])
    }

    fn drain(link: &mut TestDatagramLink) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        while let Some(n) = link.recv_frame(&mut buf) {
            out.push(buf[..n].to_vec());
        }
        out
    }

    #[test]
    fn frames_carry_their_flow_id() {
        let (mut srv, mut peers) = server(16, 4, 64);
        let f0 = srv.open_flow().unwrap();
        let f1 = srv.open_flow().unwrap();
        assert_ne!(f0.id(), f1.id());
        for _ in 0..6 {
            srv.enqueue(f0, &[0xAA; 200]).unwrap();
            srv.enqueue(f1, &[0xBB; 200]).unwrap();
        }
        let mut events = Vec::new();
        let served = srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        assert_eq!(served, 12);
        let mut by_flow = [0usize; 2];
        for p in &mut peers {
            for f in drain(p) {
                match frame::try_decode_flow(&f).expect("well-formed") {
                    (id, Frame::Data(body)) => {
                        assert_eq!(body.len(), 200);
                        let want = if id == f0.id() { 0xAA } else { 0xBB };
                        assert!(body.iter().all(|&b| b == want), "cross-flow bytes");
                        by_flow[id as usize] += 1;
                    }
                    (_, Frame::Control(Control::Marker(_))) => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(by_flow, [6, 6]);
        assert_eq!(srv.stats().path.sent, 12);
        assert_eq!(srv.flow_stats(f0).unwrap().sent, 6);
    }

    #[test]
    fn admission_parks_then_rejects() {
        let (mut srv, _peers) = server(1, 1, 64);
        let active = srv.open_flow().unwrap();
        let parked = srv.open_flow().unwrap();
        assert!(!srv.is_parked(active).unwrap());
        assert!(srv.is_parked(parked).unwrap());
        assert_eq!(srv.open_flow(), Err(FlowError::AdmissionRejected));
        let s = srv.stats();
        assert_eq!(
            (s.flows_active, s.flows_parked, s.dropped_admission),
            (1, 1, 1)
        );
        // A parked flow cannot send…
        assert_eq!(srv.enqueue(parked, &[1, 2, 3]), Err(FlowError::Parked));
        // …until an active slot frees.
        srv.close_flow(active).unwrap();
        assert!(!srv.is_parked(parked).unwrap());
        srv.enqueue(parked, &[1, 2, 3]).unwrap();
        let s = srv.stats();
        assert_eq!((s.flows_active, s.flows_parked), (1, 0));
    }

    #[test]
    fn queue_bound_backpressures_one_flow_only() {
        let (mut srv, _peers) = server(8, 0, 2);
        let f0 = srv.open_flow().unwrap();
        let f1 = srv.open_flow().unwrap();
        assert_eq!(srv.would_block(f0), Ok(false));
        srv.enqueue(f0, &[0; 10]).unwrap();
        srv.enqueue(f0, &[0; 10]).unwrap();
        assert_eq!(srv.would_block(f0), Ok(true));
        assert_eq!(
            srv.enqueue(f0, &[0; 10]),
            Err(FlowError::Backpressure { resume_hint: 1 })
        );
        // The sibling flow is untouched by f0's backpressure.
        assert_eq!(srv.would_block(f1), Ok(false));
        srv.enqueue(f1, &[0; 10]).unwrap();
        assert_eq!(srv.stats().dropped_backpressure, 1);
        assert_eq!(srv.flow_stats(f0).unwrap().dropped_backpressure, 1);
        assert_eq!(srv.flow_stats(f1).unwrap().dropped_backpressure, 0);
        // Draining the queue clears the signal.
        let mut events = Vec::new();
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        assert_eq!(srv.would_block(f0), Ok(false));
        srv.enqueue(f0, &[0; 10]).unwrap();
    }

    /// A retune fans out to every open flow, and flows opened afterwards
    /// inherit the tuned quanta — both simulations (sender and the
    /// receiver's lazily created replica) replay the same schedule.
    #[test]
    fn retune_fans_out_and_late_flows_inherit_quanta() {
        let (mut srv, mut peers) = server(8, 0, 4096);
        let f0 = srv.open_flow().unwrap();
        // 4:1 in channel 0's favour, effective as soon as each flow's
        // clamp allows.
        ControlPath::schedule_quanta(&mut srv, 0, &[4000, 1000]);
        let f1 = srv.open_flow().unwrap(); // born after the retune
        for _ in 0..50 {
            srv.enqueue(f0, &[3; 500]).unwrap();
            srv.enqueue(f1, &[4; 500]).unwrap();
        }
        let mut events = Vec::new();
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        let on0 = drain(&mut peers[0]).len();
        let on1 = drain(&mut peers[1]).len();
        // Round 1 still runs under the prototype's equal quanta (the
        // change clamps to the next boundary); everything after splits
        // 4:1, so channel 0 must carry well over half.
        assert!(
            on0 > on1 * 2,
            "channel split {on0}:{on1} does not reflect 4:1 quanta"
        );
    }

    #[test]
    fn stale_handles_miss_recycled_slots() {
        let (mut srv, _peers) = server(4, 0, 8);
        let f0 = srv.open_flow().unwrap();
        srv.close_flow(f0).unwrap();
        assert_eq!(srv.enqueue(f0, &[1]), Err(FlowError::Closed));
        assert_eq!(srv.close_flow(f0), Err(FlowError::Closed));
        // The slot is reused with a new generation; the old handle
        // still misses.
        let f0b = srv.open_flow().unwrap();
        assert_eq!(f0b.id(), f0.id());
        assert_ne!(f0b, f0);
        assert_eq!(srv.enqueue(f0, &[1]), Err(FlowError::Closed));
        srv.enqueue(f0b, &[1]).unwrap();
    }

    /// Two equally weighted backlogged flows split the served bytes
    /// about evenly even with very different packet sizes.
    #[test]
    fn drr_shares_bytes_fairly_across_flows() {
        let (mut srv, _peers) = server(8, 0, 4096);
        let big = srv.open_flow().unwrap();
        let small = srv.open_flow().unwrap();
        for _ in 0..200 {
            srv.enqueue(big, &[7; 1200]).unwrap();
        }
        for _ in 0..2400 {
            srv.enqueue(small, &[8; 100]).unwrap();
        }
        let mut events = Vec::new();
        // Pump a limited budget so both stay backlogged throughout.
        srv.pump_into(SimTime::ZERO, 1000, &mut events);
        let served_big = srv.flow_stats(big).unwrap().sent as i64 * 1200;
        let served_small = srv.flow_stats(small).unwrap().sent as i64 * 100;
        assert!(served_big > 0 && served_small > 0);
        let gap = (served_big - served_small).abs();
        assert!(gap <= 2048 + 1200, "byte gap {gap} past the DRR bound");
    }

    #[test]
    fn legacy_frames_mode_is_version_one_on_the_wire() {
        let (a0, mut b0) = datagram_pair(2048, 256);
        let mut srv: StripeServer<Srr, TestDatagramLink> = StripeServer::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(vec![a0])
            .legacy_frames(true)
            .build();
        let f = srv.open_flow().unwrap();
        srv.enqueue(f, &[9; 50]).unwrap();
        let mut events = Vec::new();
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        let frames = drain(&mut b0);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0][1], frame::FRAME_VERSION);
        assert_eq!(frame::decode(&frames[0]), Some(Frame::Data(&[9; 50][..])));
    }

    /// A flow opened while a channel is masked out must not stripe onto
    /// the dead channel once its first round completes.
    #[test]
    fn late_flow_inherits_membership_mask() {
        let (mut srv, mut peers) = server(8, 0, 4096);
        ControlPath::schedule_mask(&mut srv, 0, &[true, false]);
        let f = srv.open_flow().unwrap();
        for _ in 0..40 {
            srv.enqueue(f, &[3; 500]).unwrap();
        }
        let mut events = Vec::new();
        srv.pump_into(SimTime::ZERO, usize::MAX, &mut events);
        let on_dead = drain(&mut peers[1]).len();
        // Round 1 may still visit the channel (the mask clamps to the
        // next boundary); everything after must avoid it.
        assert!(on_dead <= 3, "{on_dead} frames on the masked channel");
        assert!(drain(&mut peers[0]).len() >= 37);
    }
}
