//! Sharded channel I/O: one worker thread per [`UdpChannel`], behind the
//! same [`DatagramLink`] surface the reactor already stripes over.
//!
//! The reactor thread keeps every piece of protocol state — SRR deficit
//! counters, marker emission, logical reception, failover — exactly as
//! single-threaded as the paper's state machines (§3.5, §5). Only the
//! syscalls move: each channel's socket lives on its own worker, and
//! frames cross between reactor and worker over bounded SPSC rings
//! ([`crate::ring`]) that recycle their buffers, so the thread hop is a
//! pointer move and the datapath stays at 0 allocs/packet in steady
//! state.
//!
//! Four rings per channel:
//!
//! ```text
//! reactor --tx-----> worker        (encoded frames to transmit)
//! reactor <--tx_free-- worker      (spent tx buffers coming home)
//! reactor <--rx------ worker       (received frames + lengths)
//! reactor --rx_free--> worker      (empty rx buffers going out)
//! ```
//!
//! Backpressure is explicit end to end: a full `tx` ring surfaces as
//! [`TxError::QueueFull`] from the facade — never a silent drop — and
//! the worker only pops as many tx frames as the channel's bounded queue
//! has slack for, so a frame accepted by the ring cannot later overflow
//! the channel queue. On the receive side the worker only pulls as many
//! datagrams from the kernel as it has free buffers and `rx`-ring space
//! for; anything beyond that waits in the kernel receive buffer (whose
//! overflow the snapshot estimates as `dropped_rcvbuf`).
//!
//! The worker polls adaptively: spin while traffic flows (budget 0 on a
//! single-CPU host, where spinning only steals the reactor's timeslice),
//! then publish an idle flag, re-check the rings to close the lost-wakeup
//! race, and `park_timeout` with an escalating bound (20µs → 1ms) so an
//! idle channel costs ~1k wakeups/s and a dead-idle one nearly nothing.
//! The facade unparks the worker whenever it pushes work while the idle
//! flag is up.
//!
//! A dead worker — panicked, or looping over a socket that died — is no
//! longer the end of the channel: [`ShardedUdpChannel::respawn`] joins
//! the old thread, banks its counters, rebuilds the channel from its
//! captured [`ChannelSpec`] on the same local port, and launches a
//! fresh supervised worker over fresh rings. The reactor drives this
//! through [`DatagramLink::revive`] under the [`crate::lifecycle`]
//! cooldown policy, so a flapping channel probes its way back instead
//! of being tombstoned.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use stripe_link::{DatagramLink, TxError};

use crate::lifecycle::LifecycleState;
use crate::ring::{spsc, Consumer, Producer};
use crate::sys;
use crate::udp::{ChannelSpec, UdpChannel, UdpChannelSnapshot};

/// One received datagram crossing the rx ring: the buffer and how many
/// of its bytes are frame.
#[derive(Debug)]
pub struct RecvSlot {
    /// Storage holding the frame (length-`mtu` buffer).
    pub buf: Vec<u8>,
    /// Valid frame bytes at the front of `buf`.
    pub len: usize,
}

/// Escalating park bounds: first parks are short so a burst arriving
/// just after idling eats ~20µs, sustained idle backs off to 1ms.
const PARK_MIN_NS: u64 = 20_000;
const PARK_MAX_NS: u64 = 1_000_000;

/// Flags and counter mirror shared between facade and worker.
#[derive(Debug, Default)]
struct WorkerShared {
    /// Worker is about to park (facade should unpark after pushing).
    idle: AtomicBool,
    /// Test hook: worker stops touching rings and socket while set.
    paused: AtomicBool,
    /// Facade dropped; worker exits its loop.
    shutdown: AtomicBool,
    /// The channel died (socket failure) or the worker panicked: the
    /// facade fails sends fast and reports `link_dead` so the reactor
    /// retires the channel through failover. Never a process abort.
    dead: AtomicBool,
    /// Test hook: the worker panics at the top of its next loop — the
    /// supervision path (catch, mark dead, degrade) exercised on demand.
    poison: AtomicBool,
    sent_frames: AtomicU64,
    sent_bytes: AtomicU64,
    recv_frames: AtomicU64,
    recv_bytes: AtomicU64,
    queued: AtomicU64,
    dropped_queue: AtomicU64,
    dropped_error: AtomicU64,
    send_syscalls: AtomicU64,
    recv_syscalls: AtomicU64,
    sndbuf: AtomicU64,
    rcvbuf: AtomicU64,
    transient_refused: AtomicU64,
    enobufs_backoffs: AtomicU64,
    mtu_clamps: AtomicU64,
    lifecycle: AtomicU64,
    generation: AtomicU64,
    rejoins: AtomicU64,
    revive_attempts: AtomicU64,
}

impl WorkerShared {
    fn publish(&self, s: &UdpChannelSnapshot) {
        self.sent_frames.store(s.sent_frames, Ordering::Relaxed);
        self.sent_bytes.store(s.sent_bytes, Ordering::Relaxed);
        self.recv_frames.store(s.recv_frames, Ordering::Relaxed);
        self.recv_bytes.store(s.recv_bytes, Ordering::Relaxed);
        self.queued.store(s.queued, Ordering::Relaxed);
        self.dropped_queue.store(s.dropped_queue, Ordering::Relaxed);
        self.dropped_error.store(s.dropped_error, Ordering::Relaxed);
        self.send_syscalls.store(s.send_syscalls, Ordering::Relaxed);
        self.recv_syscalls.store(s.recv_syscalls, Ordering::Relaxed);
        self.sndbuf.store(s.sndbuf, Ordering::Relaxed);
        self.rcvbuf.store(s.rcvbuf, Ordering::Relaxed);
        self.transient_refused
            .store(s.transient_refused, Ordering::Relaxed);
        self.enobufs_backoffs
            .store(s.enobufs_backoffs, Ordering::Relaxed);
        self.mtu_clamps.store(s.mtu_clamps, Ordering::Relaxed);
        self.lifecycle
            .store(s.lifecycle.as_u8() as u64, Ordering::Relaxed);
        self.generation.store(s.generation, Ordering::Relaxed);
        self.rejoins.store(s.rejoins, Ordering::Relaxed);
        self.revive_attempts
            .store(s.revive_attempts, Ordering::Relaxed);
    }

    fn load(&self) -> UdpChannelSnapshot {
        UdpChannelSnapshot {
            sent_frames: self.sent_frames.load(Ordering::Relaxed),
            sent_bytes: self.sent_bytes.load(Ordering::Relaxed),
            recv_frames: self.recv_frames.load(Ordering::Relaxed),
            recv_bytes: self.recv_bytes.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            dropped_queue: self.dropped_queue.load(Ordering::Relaxed),
            dropped_error: self.dropped_error.load(Ordering::Relaxed),
            send_syscalls: self.send_syscalls.load(Ordering::Relaxed),
            recv_syscalls: self.recv_syscalls.load(Ordering::Relaxed),
            sndbuf: self.sndbuf.load(Ordering::Relaxed),
            rcvbuf: self.rcvbuf.load(Ordering::Relaxed),
            dropped_rcvbuf: 0,
            transient_refused: self.transient_refused.load(Ordering::Relaxed),
            enobufs_backoffs: self.enobufs_backoffs.load(Ordering::Relaxed),
            mtu_clamps: self.mtu_clamps.load(Ordering::Relaxed),
            lifecycle: LifecycleState::from_u8(self.lifecycle.load(Ordering::Relaxed) as u8),
            generation: self.generation.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            revive_attempts: self.revive_attempts.load(Ordering::Relaxed),
        }
    }
}

/// Configuration for one sharded channel worker.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    ring_cap: usize,
    batch: usize,
    spin: Option<u32>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardConfig {
    /// Defaults: 256-frame rings, [`sys::DEFAULT_BATCH`]-frame worker
    /// batches, auto spin budget (0 on a single-CPU host).
    pub fn new() -> Self {
        Self {
            ring_cap: 256,
            batch: sys::DEFAULT_BATCH,
            spin: None,
        }
    }

    /// Frames per direction ring (rounded up to a power of two).
    pub fn ring_cap(mut self, frames: usize) -> Self {
        self.ring_cap = frames.max(1);
        self
    }

    /// Frames the worker moves per ring sweep / syscall batch.
    pub fn batch(mut self, frames: usize) -> Self {
        self.batch = frames.max(1);
        self
    }

    /// Spin iterations before the worker parks (overrides the CPU-count
    /// heuristic).
    pub fn spin(mut self, iterations: u32) -> Self {
        self.spin = Some(iterations);
        self
    }

    /// Move `chan` onto its own I/O worker thread and return the
    /// ring-backed [`DatagramLink`] facade for the reactor side.
    pub fn spawn(&self, chan: UdpChannel) -> io::Result<ShardedUdpChannel> {
        let mtu = chan.mtu();
        let port = chan.local_addr()?.port();
        // Captured before the channel moves to the worker; offload state
        // only ever demotes, and a stale `true` merely pads a few markers
        // the kernel then sends per-frame — harmless.
        let coalesce = chan.gso_offload();
        let spec = chan.spec().clone();
        let shared = Arc::new(WorkerShared::default());
        let parts = self.launch(chan, &shared)?;

        Ok(ShardedUdpChannel {
            tx: parts.tx,
            tx_free: parts.tx_free,
            rx: parts.rx,
            rx_free: parts.rx_free,
            tx_spare: Vec::with_capacity(self.ring_cap * 2),
            rx_spare: Vec::with_capacity(self.ring_cap * 2),
            shared,
            worker: Some(parts.worker),
            mtu,
            port,
            coalesce,
            dropped_ring: 0,
            cfg: self.clone(),
            spec,
            respawns: 0,
            carried: UdpChannelSnapshot::default(),
        })
    }

    /// Build the rings, pre-charge the free sides, publish the channel's
    /// starting counters into `shared`, and start the worker thread.
    /// Shared by [`spawn`](Self::spawn) and
    /// [`ShardedUdpChannel::respawn`].
    fn launch(&self, chan: UdpChannel, shared: &Arc<WorkerShared>) -> io::Result<WorkerParts> {
        let mtu = chan.mtu();
        let port = chan.local_addr()?.port();
        let spin_budget = self.spin.unwrap_or_else(|| {
            let cpus = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cpus <= 1 {
                0
            } else {
                4096
            }
        });

        let (tx_p, tx_c) = spsc::<Vec<u8>>(self.ring_cap);
        let (mut tx_free_p, tx_free_c) = spsc::<Vec<u8>>(self.ring_cap * 2);
        let (rx_p, rx_c) = spsc::<RecvSlot>(self.ring_cap);
        let (mut rx_free_p, rx_free_c) = spsc::<Vec<u8>>(self.ring_cap * 2);

        // Pre-charge the free rings so steady state never allocates:
        // tx buffers arrive empty-but-capacious, rx buffers at frame
        // length for the kernel to fill.
        for _ in 0..self.ring_cap {
            tx_free_p
                .push(Vec::with_capacity(mtu))
                .expect("fresh ring has room");
            rx_free_p.push(vec![0u8; mtu]).expect("fresh ring has room");
        }

        shared.publish(&chan.stats()); // sndbuf/rcvbuf visible immediately
        let worker_shared = Arc::clone(shared);
        let batch = self.batch;
        let worker = std::thread::Builder::new()
            .name(format!("stripe-io-{port}"))
            .spawn(move || {
                // Supervised: a panic anywhere in the worker (or a test
                // poison) must not poison `join` and abort the process —
                // it marks the channel dead, the facade degrades to
                // LinkDown, and the reactor fails the channel over.
                let dead_flag = Arc::clone(&worker_shared);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_main(
                        chan,
                        tx_c,
                        tx_free_p,
                        rx_p,
                        rx_free_c,
                        worker_shared,
                        batch,
                        spin_budget,
                    )
                }));
                match run {
                    Ok(chan) => Some(chan),
                    Err(_) => {
                        dead_flag.dead.store(true, Ordering::Release);
                        None
                    }
                }
            })?;

        Ok(WorkerParts {
            tx: tx_p,
            tx_free: tx_free_c,
            rx: rx_c,
            rx_free: rx_free_p,
            worker,
        })
    }
}

/// Everything one worker launch produces: the facade's ring halves and
/// the supervised thread handle.
struct WorkerParts {
    tx: Producer<Vec<u8>>,
    tx_free: Consumer<Vec<u8>>,
    rx: Consumer<RecvSlot>,
    rx_free: Producer<Vec<u8>>,
    worker: JoinHandle<Option<UdpChannel>>,
}

/// The reactor-side facade of a sharded channel: a [`DatagramLink`]
/// whose sends and receives cross SPSC rings to a dedicated I/O worker
/// owning the actual [`UdpChannel`].
#[derive(Debug)]
pub struct ShardedUdpChannel {
    tx: Producer<Vec<u8>>,
    tx_free: Consumer<Vec<u8>>,
    rx: Consumer<RecvSlot>,
    rx_free: Producer<Vec<u8>>,
    /// Tx buffers that couldn't go back out (ring momentarily full).
    tx_spare: Vec<Vec<u8>>,
    /// Rx buffers that couldn't go back out (ring momentarily full).
    rx_spare: Vec<Vec<u8>>,
    shared: Arc<WorkerShared>,
    worker: Option<JoinHandle<Option<UdpChannel>>>,
    mtu: usize,
    port: u16,
    /// Worker channel's segmentation-offload state at spawn time.
    coalesce: bool,
    /// Frames refused because the tx ring was full (reported as
    /// `dropped_queue` — same backpressure signal, different queue).
    dropped_ring: u64,
    /// The config that spawned us, kept for respawns.
    cfg: ShardConfig,
    /// Recipe for rebuilding the channel after the worker (and its
    /// socket) died.
    spec: ChannelSpec,
    /// Workers launched beyond the first — doubles as the socket
    /// generation handed to [`UdpChannel::from_spec`].
    respawns: u64,
    /// Counters banked from dead incarnations, folded into
    /// [`stats`](Self::stats) so telemetry stays cumulative across
    /// respawns.
    carried: UdpChannelSnapshot,
}

impl ShardedUdpChannel {
    /// Shorthand: default [`ShardConfig`] around `chan`.
    pub fn spawn(chan: UdpChannel) -> io::Result<Self> {
        ShardConfig::new().spawn(chan)
    }

    /// Counters, mirrored from the worker (refreshed once per worker
    /// loop) plus facade-side ring backpressure, cumulative across
    /// worker respawns. `dropped_rcvbuf` holds 0 until
    /// [`stats_sampled`](Self::stats_sampled).
    pub fn stats(&self) -> UdpChannelSnapshot {
        let mut s = self.shared.load().accumulated(&self.carried);
        s.dropped_queue += self.dropped_ring;
        s
    }

    /// Counters with a fresh kernel-drop sample (reads procfs — call at
    /// reporting time, not per packet).
    pub fn stats_sampled(&self) -> UdpChannelSnapshot {
        let mut s = self.stats();
        s.dropped_rcvbuf = self.kernel_drops();
        s
    }

    /// Estimate of datagrams the kernel dropped on this channel's
    /// receive buffer.
    pub fn kernel_drops(&self) -> u64 {
        sys::socket_drops_port(self.port)
    }

    /// The worker socket's local port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Test hook: freeze (`true`) or thaw (`false`) the worker. While
    /// frozen the worker touches neither rings nor socket, so ring-full
    /// backpressure can be produced deterministically.
    pub fn set_paused(&self, paused: bool) {
        self.shared.paused.store(paused, Ordering::Release);
        self.kick_always();
    }

    /// Stop the worker and take the underlying channel back (final
    /// counters included). Returns `None` if the worker panicked — the
    /// socket died with it, and the caller already saw `link_dead`.
    pub fn into_channel(mut self) -> Option<UdpChannel> {
        self.shutdown_worker()
    }

    /// Whether the worker panicked or its channel died. Mirrors
    /// [`DatagramLink::link_dead`] for callers holding the facade
    /// directly.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Test hook: make the worker panic at the top of its next loop,
    /// exercising the supervision path (catch, mark dead, degrade to
    /// `LinkDown`) on demand.
    pub fn inject_worker_panic(&self) {
        self.shared.poison.store(true, Ordering::Release);
        self.kick_always();
    }

    /// Workers launched beyond the first.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Replace a dead worker — panicked, or looping over a dead socket —
    /// with a fresh incarnation: join the old thread, bank its counters,
    /// rebuild the channel from the captured [`ChannelSpec`] on the same
    /// local port, and launch a new supervised worker over fresh rings.
    ///
    /// Returns `true` when the new worker is running (the rebuilt socket
    /// starts in `Probing` — the reactor's lifecycle machine takes it
    /// from there) and on the healthy no-op path. Returns `false` when
    /// the rebuild failed; the facade stays dead and the lifecycle
    /// machine retries after its cooldown.
    pub fn respawn(&mut self) -> bool {
        if self.worker.is_some() && !self.is_dead() {
            return true;
        }
        // Tear down the dead incarnation and bank what it counted. The
        // join means nobody else holds ring halves or the shared Arc's
        // writer side after this point.
        let old = self.shutdown_worker();
        self.carried = self.shared.load().accumulated(&self.carried);
        self.carried.revive_attempts += 1;
        // Zero the mirror (its counts just moved to `carried`) but keep
        // it honest about the state until a new worker takes over.
        self.shared.publish(&UdpChannelSnapshot {
            lifecycle: LifecycleState::Dead,
            ..UdpChannelSnapshot::default()
        });
        // Drop the old channel (if the worker returned it) before
        // rebinding: `from_spec` needs the local port back.
        drop(old);
        // Stale ring halves die with the old worker; so do their stashes.
        self.tx_spare.clear();
        self.rx_spare.clear();
        self.carried.dropped_queue += std::mem::take(&mut self.dropped_ring);

        self.respawns += 1;
        let chan = match UdpChannel::from_spec(&self.spec, self.respawns) {
            Ok(c) => c,
            // Port still held, ENOMEM, ...: stay dead, retry later.
            Err(_) => return false,
        };
        self.mtu = chan.mtu();
        self.coalesce = chan.gso_offload();

        // The Arc is exclusively ours again — reset the flags for the
        // new incarnation.
        self.shared.shutdown.store(false, Ordering::Release);
        self.shared.poison.store(false, Ordering::Release);
        self.shared.idle.store(false, Ordering::Release);
        self.shared.paused.store(false, Ordering::Release);
        self.shared.dead.store(false, Ordering::Release);

        match self.cfg.launch(chan, &self.shared) {
            Ok(parts) => {
                self.tx = parts.tx;
                self.tx_free = parts.tx_free;
                self.rx = parts.rx;
                self.rx_free = parts.rx_free;
                self.worker = Some(parts.worker);
                true
            }
            Err(_) => {
                self.shared.dead.store(true, Ordering::Release);
                false
            }
        }
    }

    fn shutdown_worker(&mut self) -> Option<UdpChannel> {
        let worker = self.worker.take()?;
        self.shared.shutdown.store(true, Ordering::Release);
        worker.thread().unpark();
        worker.join().ok().flatten()
    }

    /// Unpark the worker if it flagged itself idle.
    fn kick(&self) {
        if self.shared.idle.load(Ordering::Acquire) {
            self.kick_always();
        }
    }

    fn kick_always(&self) {
        if let Some(w) = &self.worker {
            w.thread().unpark();
        }
    }

    fn take_tx_buf(&mut self) -> Vec<u8> {
        self.tx_spare
            .pop()
            .or_else(|| self.tx_free.pop())
            .unwrap_or_default()
    }

    fn give_back_rx(&mut self, buf: Vec<u8>) {
        if let Err(buf) = self.rx_free.push(buf) {
            self.rx_spare.push(buf);
        } else if !self.rx_spare.is_empty() {
            // Opportunistically drain the spare stash while there's room.
            while let Some(b) = self.rx_spare.pop() {
                if let Err(b) = self.rx_free.push(b) {
                    self.rx_spare.push(b);
                    break;
                }
            }
        }
    }
}

impl Drop for ShardedUdpChannel {
    fn drop(&mut self) {
        self.shutdown_worker();
    }
}

impl DatagramLink for ShardedUdpChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if self.is_dead() {
            return Err(TxError::LinkDown);
        }
        if frame.len() > self.mtu {
            return Err(TxError::TooBig);
        }
        let mut buf = self.take_tx_buf();
        buf.clear();
        buf.extend_from_slice(frame);
        match self.tx.push(buf) {
            Ok(()) => {
                self.kick();
                Ok(())
            }
            Err(buf) => {
                self.tx_spare.push(buf);
                self.dropped_ring += 1;
                self.kick(); // the worker is clearly behind — wake it
                Err(TxError::QueueFull)
            }
        }
    }

    fn send_run(&mut self, frames: &[Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        out.reserve(frames.len());
        for f in frames {
            out.push(self.send_frame(f));
        }
    }

    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        out.reserve(frames.len());
        if self.is_dead() {
            // Storage is left untouched: dead-channel rejects behave like
            // any other per-frame failure.
            out.extend(frames.iter().map(|_| Err(TxError::LinkDown)));
            return;
        }
        for frame in frames.iter_mut() {
            if frame.len() > self.mtu {
                out.push(Err(TxError::TooBig));
                continue;
            }
            let replacement = self.take_tx_buf();
            let owned = std::mem::replace(frame, replacement);
            match self.tx.push(owned) {
                Ok(()) => out.push(Ok(())),
                Err(owned) => {
                    // Undo the swap: rejected frames are left untouched.
                    let replacement = std::mem::replace(frame, owned);
                    self.tx_spare.push(replacement);
                    self.dropped_ring += 1;
                    out.push(Err(TxError::QueueFull));
                }
            }
        }
        self.kick();
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        let slot = self.rx.pop()?;
        let n = slot.len.min(buf.len());
        buf[..n].copy_from_slice(&slot.buf[..n]);
        self.give_back_rx(slot.buf);
        Some(n)
    }

    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        debug_assert!(lens.len() >= bufs.len(), "one length slot per buffer");
        let mut k = 0;
        while k < bufs.len() {
            let Some(slot) = self.rx.pop() else { break };
            lens[k] = slot.len;
            let old = std::mem::replace(&mut bufs[k], slot.buf);
            self.give_back_rx(old);
            k += 1;
        }
        if k > 0 {
            self.kick(); // free buffers just went back — let the worker recv
        }
        k
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn coalesce_hint(&self) -> bool {
        self.coalesce
    }

    fn flush(&mut self) -> usize {
        self.kick();
        0
    }

    fn backlog(&self) -> usize {
        self.tx.len()
    }

    fn link_dead(&self) -> bool {
        self.is_dead()
    }

    fn revive(&mut self) -> bool {
        self.respawn()
    }

    fn tx_evidence(&self) -> Option<stripe_link::TxEvidence> {
        let s = self.stats();
        Some(stripe_link::TxEvidence {
            frames: s.sent_frames,
            bytes: s.sent_bytes,
            dropped: s.dropped_queue + s.dropped_error,
        })
    }
}

/// The worker loop: owns the channel, drains the tx ring into eager
/// batched sends, pulls receives into free buffers, mirrors counters,
/// and spin-then-parks when idle.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    mut chan: UdpChannel,
    mut tx: Consumer<Vec<u8>>,
    mut tx_free: Producer<Vec<u8>>,
    mut rx: Producer<RecvSlot>,
    mut rx_free: Consumer<Vec<u8>>,
    shared: Arc<WorkerShared>,
    batch: usize,
    spin_budget: u32,
) -> UdpChannel {
    let mtu = chan.mtu();
    let mut scratch: Vec<Vec<u8>> = Vec::with_capacity(batch);
    let mut results: Vec<Result<(), TxError>> = Vec::with_capacity(batch);
    let mut stash: Vec<Vec<u8>> = Vec::with_capacity(batch);
    let mut lens = vec![0usize; batch];
    let mut spins = 0u32;
    let mut park_ns = PARK_MIN_NS;

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if shared.paused.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(100));
            continue;
        }
        if shared.poison.swap(false, Ordering::AcqRel) {
            panic!("shard worker poisoned by test hook");
        }
        if chan.link_dead() && !shared.dead.load(Ordering::Acquire) {
            // Socket death ends this incarnation: tell the facade, then
            // keep looping so in-flight tx buffers drain back home (the
            // dead channel fails each send fast and recycles its
            // storage) until `respawn` joins us and starts a successor.
            shared.dead.store(true, Ordering::Release);
        }
        let mut progress = false;

        // TX: pop at most as many frames as the channel queue has slack
        // for, so a WouldBlock run can always park without overflowing —
        // a frame the ring accepted is never dropped by this layer.
        let slack = chan.queue_capacity().saturating_sub(chan.backlog());
        let take = slack.min(batch);
        scratch.clear();
        while scratch.len() < take {
            match tx.pop() {
                Some(f) => scratch.push(f),
                None => break,
            }
        }
        if !scratch.is_empty() {
            progress = true;
            results.clear();
            // Eager path: flush + mmsg the run; backpressure parks in the
            // channel's own bounded queue (within the slack we reserved).
            chan.send_run(&scratch, &mut results);
            for buf in scratch.drain(..) {
                // Free ring is 2x the tx ring; overflow means the facade
                // stopped recycling, so dropping the buffer is safe.
                let _ = tx_free.push(buf);
            }
        }
        if chan.backlog() > 0 && chan.flush() > 0 {
            progress = true;
        }

        // RX: pull only what we hold free buffers AND rx-ring space for;
        // the rest waits in the kernel receive buffer.
        let space = rx.capacity() - rx.len();
        let want = space.min(batch);
        while stash.len() < want {
            match rx_free.pop() {
                Some(mut b) => {
                    if b.len() < mtu {
                        b.resize(mtu, 0);
                    }
                    stash.push(b);
                }
                None => break,
            }
        }
        let n_bufs = stash.len().min(want);
        if n_bufs > 0 {
            let got = chan.recv_run(&mut stash[..n_bufs], &mut lens[..n_bufs]);
            if got > 0 {
                progress = true;
                for (i, buf) in stash.drain(..got).enumerate() {
                    // Cannot fail: bounded by `space` measured above.
                    let _ = rx.push(RecvSlot { buf, len: lens[i] });
                }
            }
        }

        shared.publish(&chan.stats());

        if progress {
            spins = 0;
            park_ns = PARK_MIN_NS;
            continue;
        }
        if spins < spin_budget {
            spins += 1;
            std::hint::spin_loop();
            continue;
        }
        // Park protocol: raise the idle flag, re-check for work that
        // raced in (the producer tests the flag *after* pushing), then
        // park with a bounded timeout as the lost-wakeup backstop and
        // the rx poll heartbeat.
        shared.idle.store(true, Ordering::Release);
        if !tx.is_empty() || shared.shutdown.load(Ordering::Acquire) {
            shared.idle.store(false, Ordering::Release);
            continue;
        }
        std::thread::park_timeout(Duration::from_nanos(park_ns));
        shared.idle.store(false, Ordering::Release);
        park_ns = (park_ns * 2).min(PARK_MAX_NS);
        spins = 0;
    }

    // Last-gasp: push out whatever is still queued so short-lived
    // facades (tests) don't strand frames.
    chan.flush();
    shared.publish(&chan.stats());
    chan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(mtu: usize) -> (ShardedUdpChannel, UdpChannel) {
        let (a, b) = UdpChannel::pair(mtu, 1 << 10).unwrap();
        (ShardedUdpChannel::spawn(a).unwrap(), b)
    }

    fn recv_poll(ch: &mut impl DatagramLink, buf: &mut [u8]) -> Option<usize> {
        for _ in 0..100_000 {
            if let Some(n) = ch.recv_frame(buf) {
                return Some(n);
            }
            std::thread::yield_now();
        }
        None
    }

    #[test]
    fn frames_cross_the_shard_both_ways() {
        let (mut a, mut b) = pair(256);
        a.send_frame(&[1, 2, 3]).unwrap();
        b.send_frame(&[9]).unwrap();
        let mut buf = [0u8; 256];
        let n = recv_poll(&mut b, &mut buf).expect("frame shard->plain");
        assert_eq!(&buf[..n], &[1, 2, 3]);
        let n = recv_poll(&mut a, &mut buf).expect("frame plain->shard");
        assert_eq!(&buf[..n], &[9]);
        let s = a.stats();
        assert_eq!(s.sent_frames, 1);
        assert_eq!(s.recv_frames, 1);
    }

    #[test]
    fn frames_stay_in_order_through_the_rings() {
        let (mut a, mut b) = pair(64);
        let mut sent = 0u8;
        while sent < 128 {
            match a.send_frame(&[sent]) {
                Ok(()) => sent += 1,
                Err(TxError::QueueFull) => std::thread::yield_now(),
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        let mut buf = [0u8; 64];
        for want in 0..128u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (1, want));
        }
    }

    #[test]
    fn ring_full_is_queue_full_and_never_a_silent_drop() {
        let (a_chan, mut b) = UdpChannel::pair(64, 1 << 10).unwrap();
        let mut a = ShardConfig::new().ring_cap(4).spawn(a_chan).unwrap();
        a.set_paused(true);
        // Give the worker a beat to observe the pause, then fill the ring.
        std::thread::sleep(Duration::from_millis(5));
        let mut accepted = 0u32;
        let mut refused = 0u32;
        for i in 0..16u8 {
            match a.send_frame(&[i]) {
                Ok(()) => accepted += 1,
                Err(TxError::QueueFull) => refused += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(accepted, 4, "exactly the ring capacity is accepted");
        assert_eq!(refused, 12, "overflow is loud, not silent");
        assert_eq!(a.stats().dropped_queue, 12, "refusals are counted");
        // Thaw: every accepted frame must come out the far end.
        a.set_paused(false);
        a.flush();
        let mut buf = [0u8; 64];
        for want in 0..4u8 {
            let n = recv_poll(&mut b, &mut buf).expect("accepted frame delivered");
            assert_eq!((n, buf[0]), (1, want));
        }
        assert!(b.recv_frame(&mut buf).is_none(), "and nothing else");
    }

    #[test]
    fn send_run_owned_takes_storage_and_leaves_rejects_untouched() {
        let (mut a, mut b) = pair(8);
        let mut frames: Vec<Vec<u8>> = vec![vec![1], vec![0; 9], vec![2]];
        let mut out = Vec::new();
        a.send_run_owned(&mut frames, &mut out);
        assert_eq!(out, vec![Ok(()), Err(TxError::TooBig), Ok(())]);
        assert_eq!(frames[1], vec![0; 9], "rejected frame untouched");
        let mut buf = [0u8; 8];
        for want in [1u8, 2] {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (1, want));
        }
    }

    #[test]
    fn recv_run_swaps_buffers_and_reports_lengths() {
        let (mut a, b_chan) = UdpChannel::pair(64, 1 << 10).unwrap();
        let mut b = ShardedUdpChannel::spawn(b_chan).unwrap();
        for i in 0..6u8 {
            a.send_frame(&[i, i, i]).unwrap();
        }
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 64]).collect();
        let mut lens = [0usize; 4];
        let mut got = Vec::new();
        for _ in 0..100_000 {
            let k = b.recv_run(&mut bufs, &mut lens);
            for i in 0..k {
                got.push((bufs[i][0], lens[i]));
            }
            if got.len() == 6 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(
            got,
            (0..6u8).map(|i| (i, 3usize)).collect::<Vec<_>>(),
            "all frames, in order, with lengths"
        );
    }

    #[test]
    fn into_channel_returns_the_socket_with_final_counters() {
        let (mut a, mut b) = pair(64);
        a.send_frame(&[7; 8]).unwrap();
        let mut buf = [0u8; 64];
        recv_poll(&mut b, &mut buf).expect("frame");
        let chan = a.into_channel().expect("healthy worker returns the socket");
        assert_eq!(chan.stats().sent_frames, 1);
    }

    #[test]
    fn worker_panic_is_caught_and_reported_as_link_dead() {
        let (mut a, _b) = pair(64);
        a.inject_worker_panic();
        // The panic lands on the worker thread; the facade sees only the
        // dead flag. Poll for it rather than sleeping a fixed beat.
        for _ in 0..100_000 {
            if a.is_dead() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(a.link_dead(), "panic surfaces as link_dead, not an abort");
        assert_eq!(a.send_frame(&[1]), Err(TxError::LinkDown));
        let mut frames = vec![vec![2u8], vec![3u8]];
        let mut out = Vec::new();
        a.send_run_owned(&mut frames, &mut out);
        assert_eq!(out, vec![Err(TxError::LinkDown); 2]);
        assert_eq!(frames, vec![vec![2u8], vec![3u8]], "storage untouched");
        assert!(
            a.into_channel().is_none(),
            "the socket died with the worker"
        );
    }

    #[test]
    fn poisoned_worker_with_loaded_tx_ring_tears_down_cleanly() {
        let (a_chan, _b) = UdpChannel::pair(64, 1 << 10).unwrap();
        let mut a = ShardConfig::new().ring_cap(8).spawn(a_chan).unwrap();
        // Freeze the worker, load the tx ring, then poison it: the
        // supervision path must not strand the in-flight frames' buffers.
        a.set_paused(true);
        std::thread::sleep(Duration::from_millis(5));
        for i in 0..8u8 {
            a.send_frame(&[i]).unwrap();
        }
        a.inject_worker_panic();
        a.set_paused(false);
        for _ in 0..100_000 {
            if a.is_dead() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(a.link_dead());
        // No abort, no deadlock: teardown joins the worker cleanly.
        assert!(a.into_channel().is_none());
    }

    #[test]
    fn respawn_replaces_a_panicked_worker() {
        let (mut a, mut b) = pair(64);
        a.send_frame(&[1]).unwrap();
        let mut buf = [0u8; 64];
        recv_poll(&mut b, &mut buf).expect("pre-crash frame");

        a.inject_worker_panic();
        for _ in 0..100_000 {
            if a.is_dead() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(a.link_dead(), "panic surfaces as link_dead first");

        assert!(a.respawn(), "respawn brings up a fresh worker");
        assert!(!a.is_dead(), "the facade is back in business");
        assert_eq!(a.respawns(), 1);

        // The new incarnation moves frames on the same local port.
        a.send_frame(&[2]).unwrap();
        let n = recv_poll(&mut b, &mut buf).expect("post-respawn frame");
        assert_eq!((n, buf[0]), (1, 2));
        b.send_frame(&[3]).unwrap();
        let n = recv_poll(&mut a, &mut buf).expect("reverse frame");
        assert_eq!((n, buf[0]), (1, 3));

        // The worker publishes once per loop; give the mirror a beat.
        let mut s = a.stats();
        for _ in 0..100_000 {
            s = a.stats();
            if s.lifecycle == LifecycleState::Live && s.sent_frames == 2 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(s.sent_frames, 2, "counters are cumulative across respawns");
        assert_eq!(s.generation, 1, "rebuilt socket carries its generation");
        assert_eq!(s.revive_attempts, 1);
        assert_eq!(
            s.lifecycle,
            LifecycleState::Live,
            "first inbound frame completes the probe"
        );
        assert_eq!(s.rejoins, 1);
    }

    #[test]
    fn respawn_on_a_healthy_worker_is_a_noop() {
        let (mut a, mut b) = pair(64);
        a.send_frame(&[5]).unwrap();
        let mut buf = [0u8; 64];
        recv_poll(&mut b, &mut buf).expect("frame");
        assert!(a.respawn(), "healthy facade reports success");
        assert_eq!(a.respawns(), 0, "without actually relaunching anything");
        for _ in 0..100_000 {
            if a.stats().sent_frames == 1 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(a.stats().sent_frames, 1, "and without touching counters");
    }

    #[test]
    fn revive_is_respawn_behind_the_link_trait() {
        let (mut a, mut b) = pair(64);
        a.inject_worker_panic();
        for _ in 0..100_000 {
            if a.is_dead() {
                break;
            }
            std::thread::yield_now();
        }
        let link: &mut dyn DatagramLink = &mut a;
        assert!(link.revive(), "lifecycle machine sees a rebindable link");
        assert!(!link.link_dead());
        link.send_frame(&[9]).unwrap();
        let mut buf = [0u8; 64];
        let n = recv_poll(&mut b, &mut buf).expect("frame after trait revive");
        assert_eq!((n, buf[0]), (1, 9));
    }
}
