//! The real-socket striping sender: [`NetStripedPath`] is the
//! [`StripedPath`] of the kernel-network world — implemented, since the
//! multi-flow redesign, as the *single-flow special case* of
//! [`StripeServer`](crate::server::StripeServer).
//!
//! The path owns a one-flow server in legacy-frame mode: flow 0, an
//! unbounded flow queue, untagged version-1 frames on the wire. A
//! [`send_batch`](NetStripedPath::send_batch) enqueues the burst on the
//! single flow and pumps it to completion; with one flow, the server's
//! inter-flow DRR degenerates to strict FIFO and everything observable —
//! channel decisions, marker interleaving points, GSO pad targets, the
//! single end-of-batch flush, the [`PathSnapshot`] counters, and the
//! bytes on the wire — is identical to the dedicated single-flow
//! datapath this type used to be. The PR 2–6 test suites run against
//! this wrapper unmodified.
//!
//! The contract, unchanged:
//!
//! - `arrival: Some(now)` in a [`Transmission`] means "handed to the
//!   network at this instant". The real arrival time is unknowable; the
//!   far end finds out when the frame shows up. `None` still means the
//!   frame never left ([`TxError::QueueFull`] backpressure and friends).
//! - The batch path encodes into recycled buffers and offers each
//!   same-channel run through [`DatagramLink::send_run_owned`] — the
//!   zero-copy `sendmmsg` seam, with one end-of-batch flush submitting
//!   each channel's whole accumulated burst as one `mmsghdr` batch. A
//!   steady-state sender performs **zero heap allocations per packet**.
//! - [`ControlPath`] is implemented, so the PR-1
//!   [`FailoverDriver`](stripe_transport::FailoverDriver) drives
//!   liveness probes and membership handshakes over real sockets
//!   unchanged.
//!
//! [`StripedPath`]: stripe_transport::StripedPath

use stripe_core::control::Control;
use stripe_core::receiver::Arrival;
use stripe_core::sched::CausalScheduler;
use stripe_core::sender::{MarkerConfig, StripingSender};
use stripe_core::types::{ChannelId, WireLen};
use stripe_link::DatagramLink;
use stripe_netsim::SimTime;
use stripe_transport::{ControlPath, ControlTransmission, PathSnapshot, Transmission, TxBatch};

use crate::server::{FlowHandle, PumpEvent, StripeServer};

/// Builder for [`NetStripedPath`], mirroring
/// [`StripedPathBuilder`](stripe_transport::StripedPathBuilder).
#[derive(Debug)]
pub struct NetStripedPathBuilder<S: CausalScheduler, L: DatagramLink> {
    sched: Option<S>,
    markers: MarkerConfig,
    links: Vec<L>,
    integrity: bool,
}

impl<S: CausalScheduler, L: DatagramLink> Default for NetStripedPathBuilder<S, L> {
    fn default() -> Self {
        Self {
            sched: None,
            markers: MarkerConfig::disabled(),
            links: Vec::new(),
            integrity: false,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> NetStripedPathBuilder<S, L> {
    /// The causal scheduler driving channel selection. Required.
    pub fn scheduler(mut self, sched: S) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Marker emission policy. Defaults to [`MarkerConfig::disabled`].
    pub fn markers(mut self, cfg: MarkerConfig) -> Self {
        self.markers = cfg;
        self
    }

    /// The member links, one per scheduler channel. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Emit data frames with a CRC-8 trailer
    /// ([`KIND_DATA_SUMMED`](crate::frame::KIND_DATA_SUMMED)) so the far
    /// end detects payload corruption instead of delivering flipped bits
    /// (§5's "detectable corruption" assumption made literal). Costs one
    /// byte per frame plus the checksum pass; defaults to off, so the
    /// headline datapath pays nothing.
    pub fn integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        self
    }
}

impl<S: CausalScheduler + Clone, L: DatagramLink> NetStripedPathBuilder<S, L> {
    /// Assemble the path: a one-flow [`StripeServer`] in legacy-frame
    /// mode with flow 0 pre-opened.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied or if the link count differs
    /// from the scheduler's channel count.
    pub fn build(self) -> NetStripedPath<S, L> {
        let sched = self.sched.expect("NetStripedPathBuilder needs a scheduler");
        assert_eq!(
            self.links.len(),
            sched.channels(),
            "one link per scheduler channel"
        );
        let mut server = StripeServer::builder()
            .scheduler(sched)
            .markers(self.markers)
            .links(self.links)
            .integrity(self.integrity)
            .legacy_frames(true)
            .max_flows(1)
            .park_capacity(0)
            .queue_frames(usize::MAX)
            .build();
        let handle = server.open_flow().expect("a fresh server admits flow 0");
        NetStripedPath {
            server,
            handle,
            events: Vec::new(),
        }
    }
}

/// A striping sender bound to real datagram channels — flow 0 of a
/// one-flow [`StripeServer`].
#[derive(Debug)]
pub struct NetStripedPath<S: CausalScheduler, L: DatagramLink> {
    server: StripeServer<S, L>,
    handle: FlowHandle,
    /// Recycled pump-event scratch (steady state allocates nothing).
    events: Vec<PumpEvent>,
}

impl<S: CausalScheduler, L: DatagramLink> NetStripedPath<S, L> {
    /// Start building a path: `NetStripedPath::builder().scheduler(…)
    /// .markers(…).links(…).build()`.
    pub fn builder() -> NetStripedPathBuilder<S, L> {
        NetStripedPathBuilder::default()
    }

    /// The striped *payload* MTU: the minimum member frame MTU minus the
    /// frame header (§6.1's minimum-MTU rule, net of framing).
    pub fn max_payload(&self) -> usize {
        self.server.max_payload()
    }

    /// Stripe a whole burst at `now` into a caller-owned batch with zero
    /// steady-state heap allocation: `pkts` is drained (capacity stays
    /// with the caller) and `out` is cleared and refilled in offer order
    /// — each data packet, then each marker batch right after the packet
    /// it follows. Channel decisions and marker points are identical to
    /// the simulated path's `send_batch` for the same scheduler state.
    ///
    /// `arrival: Some(now)` means the frame was handed to the network
    /// (or parked in the link's bounded backlog for the next flush);
    /// `None` plus `error` means it never left.
    pub fn send_batch<P: WireLen + AsRef<[u8]>>(
        &mut self,
        now: SimTime,
        pkts: &mut Vec<P>,
        out: &mut TxBatch<P>,
    ) {
        out.clear();
        if self.server.parked() {
            // Total blackout or §5 reset in flight: fail the whole burst
            // fast instead of queueing into a parked flow. Same shape as
            // the simulated path — no arrival, `LinkDown` per packet.
            for pkt in pkts.drain(..) {
                out.push(Transmission {
                    channel: 0,
                    arrival: None,
                    item: Arrival::Data(pkt),
                    error: Some(stripe_link::TxError::LinkDown),
                });
            }
            return;
        }
        for pkt in pkts.iter() {
            self.server
                .enqueue(self.handle, pkt.as_ref())
                .expect("the single flow's queue is unbounded");
        }
        // One flow: the DRR degenerates to FIFO, so the pump serves this
        // exact burst in order, markers interleaved at the SRR's
        // boundaries, one flush at the end — the legacy batch, restated.
        self.server.pump_into(now, usize::MAX, &mut self.events);
        let mut pkt_iter = pkts.drain(..);
        for ev in self.events.drain(..) {
            match ev {
                PumpEvent::Data { channel, error, .. } => {
                    let pkt = pkt_iter.next().expect("one packet per data event");
                    out.push(Transmission {
                        channel,
                        arrival: if error.is_none() { Some(now) } else { None },
                        item: Arrival::Data(pkt),
                        error,
                    });
                }
                PumpEvent::Marker {
                    channel,
                    marker,
                    error,
                    ..
                } => {
                    out.push(Transmission {
                        channel,
                        arrival: if error.is_none() { Some(now) } else { None },
                        item: Arrival::Marker(marker),
                        error,
                    });
                }
            }
        }
        debug_assert!(pkt_iter.next().is_none(), "every packet was served");
    }

    /// Emit a full marker batch into a caller-owned buffer (timer-driven
    /// markers during idle periods). `out` is cleared first.
    pub fn send_markers_into<P>(&mut self, now: SimTime, out: &mut TxBatch<P>) {
        out.clear();
        self.server.send_idle_markers_into(now, &mut self.events);
        for ev in self.events.drain(..) {
            if let PumpEvent::Marker {
                channel,
                marker,
                error,
                ..
            } = ev
            {
                out.push(Transmission {
                    channel,
                    arrival: if error.is_none() { Some(now) } else { None },
                    item: Arrival::Marker(marker),
                    error,
                });
            }
        }
    }

    /// Try to drain every link's local backlog (after kernel
    /// backpressure). Returns the total number of frames that left.
    pub fn flush(&mut self) -> usize {
        self.server.flush()
    }

    /// Frames parked across all link backlogs.
    pub fn backlog(&self) -> usize {
        self.server.backlog()
    }

    /// Loss/overhead counters (shared shape with the simulated path).
    pub fn stats(&self) -> PathSnapshot {
        self.server.stats().path
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        self.server.links()
    }

    /// Mutable access to the member links (the reactor's receive sweep).
    pub fn links_mut(&mut self) -> &mut [L] {
        self.server.links_mut()
    }

    /// Take the links back out, consuming the path — endpoint teardown
    /// wants its sockets (and their final counters) returned.
    pub fn into_links(self) -> Vec<L> {
        self.server.into_links()
    }

    /// The sender engine (fairness ledgers, marker counts) — flow 0's.
    pub fn sender(&self) -> &StripingSender<S> {
        self.server
            .flow_sender(self.handle)
            .expect("flow 0 never closes")
    }

    /// Mutable access to the sender engine (membership, resets).
    pub fn sender_mut(&mut self) -> &mut StripingSender<S> {
        self.server
            .flow_sender_mut(self.handle)
            .expect("flow 0 never closes")
    }

    /// Is the path parked (total blackout or §5 reset in flight)? Data
    /// sends fail fast with `LinkDown`; control still flows.
    pub fn parked(&self) -> bool {
        self.server.parked()
    }

    /// Flush the sender engine after a completed §5 reset: scheduler,
    /// fairness ledgers, and marker cadence restart from zero, matching
    /// the receiver's flushed state.
    pub fn reset_engine(&mut self) {
        self.server.reset_flows();
    }

    /// The underlying one-flow server.
    pub fn server(&self) -> &StripeServer<S, L> {
        &self.server
    }
}

impl<S: CausalScheduler, L: DatagramLink> ControlPath for NetStripedPath<S, L> {
    fn channels(&self) -> usize {
        ControlPath::channels(&self.server)
    }

    fn current_round(&self) -> u64 {
        ControlPath::current_round(&self.server)
    }

    fn schedule_mask(&mut self, effective_round: u64, live: &[bool]) {
        ControlPath::schedule_mask(&mut self.server, effective_round, live);
    }

    fn schedule_quanta(&mut self, effective_round: u64, quanta: &[i64]) {
        ControlPath::schedule_quanta(&mut self.server, effective_round, quanta);
    }

    fn transmit_control(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: Control,
    ) -> ControlTransmission {
        ControlPath::transmit_control(&mut self.server, now, c, ctl)
    }

    fn transmit_control_ref(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: &Control,
    ) -> ControlTransmission {
        ControlPath::transmit_control_ref(&mut self.server, now, c, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{self, Frame, FRAME_HEADER_LEN};
    use bytes::Bytes;
    use stripe_core::sched::Srr;
    use stripe_link::{datagram_pair, TestDatagramLink, TxError};

    fn two_channel_path(
        markers: MarkerConfig,
    ) -> (NetStripedPath<Srr, TestDatagramLink>, Vec<TestDatagramLink>) {
        let (a0, b0) = datagram_pair(1503, 1024);
        let (a1, b1) = datagram_pair(1503, 1024);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(markers)
            .links(vec![a0, a1])
            .build();
        (path, vec![b0, b1])
    }

    fn drain(link: &mut TestDatagramLink) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        while let Some(n) = link.recv_frame(&mut buf) {
            out.push(buf[..n].to_vec());
        }
        out
    }

    /// Channel decisions must match a bare scheduler fed the same
    /// lengths — the net path shares the sim path's engine exactly.
    #[test]
    fn channel_decisions_match_bare_scheduler() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::disabled());
        let mut bare = Srr::equal(2, 1500);
        let lens = [550usize, 200, 1400, 150, 300, 900, 60, 1200];
        let mut pkts: Vec<Bytes> = lens.iter().map(|&l| Bytes::from(vec![0xAA; l])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        assert_eq!(out.len(), lens.len());
        for (t, &len) in out.iter().zip(&lens) {
            let expect = bare.current();
            bare.advance(len);
            assert_eq!(t.channel, expect);
            assert_eq!(t.arrival, Some(SimTime::ZERO));
        }
        // And the frames really left: payload bytes arrive framed.
        let per_ch: usize = peers.iter_mut().map(|p| drain(p).len()).sum();
        assert_eq!(per_ch, lens.len());
    }

    /// Frames decode back to the exact payloads, in per-channel order,
    /// with markers interleaved at the emission points.
    #[test]
    fn frames_carry_payloads_and_markers() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::every_rounds(2));
        // 100 × 100 B = 10000 B ≈ 3.3 rounds of the 2 × 1500 B quantum:
        // comfortably past round 2, where the first marker batch is due.
        let mut pkts: Vec<Bytes> = (0..100u8).map(|i| Bytes::from(vec![i; 100])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        assert!(path.stats().markers_sent > 0, "markers must have fired");
        let mut data = 0;
        let mut markers = 0;
        for p in &mut peers {
            for f in drain(p) {
                match frame::decode(&f).expect("well-formed frame") {
                    Frame::Data(body) => {
                        assert_eq!(body.len(), 100);
                        assert!(body.iter().all(|&b| b == body[0]));
                        data += 1;
                    }
                    Frame::Control(Control::Marker(_)) => markers += 1,
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        }
        assert_eq!(data, 100);
        assert_eq!(markers as u64, path.stats().markers_sent);
    }

    /// Backpressure surfaces as QueueFull transmissions with no arrival,
    /// counted under dropped_queue — same contract as the sim path.
    #[test]
    fn queue_full_reported_per_packet() {
        let (a0, _b0) = datagram_pair(1503, 2);
        let (a1, _b1) = datagram_pair(1503, 2);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .build();
        let mut pkts: Vec<Bytes> = (0..10).map(|_| Bytes::from(vec![0u8; 1400])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        let failed = out.iter().filter(|t| t.error.is_some()).count();
        assert!(failed > 0, "tiny queues must overflow");
        assert_eq!(path.stats().dropped_queue as usize, failed);
        for t in out.iter().filter(|t| t.error.is_some()) {
            assert_eq!(t.arrival, None);
            assert_eq!(t.error, Some(TxError::QueueFull));
        }
    }

    /// Steady state: batches reuse every scratch buffer, so repeated
    /// sends at the same batch size push the high-water mark once.
    #[test]
    fn idle_markers_cover_live_channels() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::every_rounds(8));
        let mut out: TxBatch<Bytes> = TxBatch::new();
        path.send_markers_into(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        for (c, p) in peers.iter_mut().enumerate() {
            let frames = drain(p);
            assert_eq!(frames.len(), 1);
            match frame::decode(&frames[0]) {
                Some(Frame::Control(Control::Marker(mk))) => assert_eq!(mk.channel, c),
                other => panic!("expected marker, got {other:?}"),
            }
        }
    }

    /// The ControlPath surface transmits real control frames.
    #[test]
    fn control_path_sends_decodable_frames() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::disabled());
        let t = ControlPath::transmit_control(
            &mut path,
            SimTime::from_nanos(5),
            1,
            Control::Probe { nonce: 77 },
        );
        assert_eq!(t.arrival, Some(SimTime::from_nanos(5)));
        assert_eq!(t.channel, 1);
        let frames = drain(&mut peers[1]);
        assert_eq!(frames.len(), 1);
        assert_eq!(
            frame::decode(&frames[0]),
            Some(Frame::Control(Control::Probe { nonce: 77 }))
        );
        assert_eq!(path.stats().control_sent, 1);
    }

    #[test]
    fn max_payload_subtracts_header_from_min_mtu() {
        let (path, _peers) = two_channel_path(MarkerConfig::disabled());
        assert_eq!(path.max_payload(), 1500);
    }

    /// Integrity mode: every data frame goes out summed, round-trips
    /// through `try_decode`, and a flipped payload bit is caught as
    /// `Corrupt` rather than delivered.
    #[test]
    fn integrity_mode_emits_summed_frames() {
        let (a0, b0) = datagram_pair(1504, 1024);
        let (a1, b1) = datagram_pair(1504, 1024);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .integrity(true)
            .build();
        assert_eq!(
            path.max_payload(),
            1504 - FRAME_HEADER_LEN - frame::SUM_TRAILER_LEN
        );
        let mut pkts: Vec<Bytes> = (0..8u8).map(|i| Bytes::from(vec![i; 64])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        let mut peers = [b0, b1];
        let mut data = 0;
        for p in &mut peers {
            for mut f in drain(p) {
                assert_eq!(f[2], frame::KIND_DATA_SUMMED, "summed kind on the wire");
                let Ok(Frame::Data(body)) = frame::try_decode(&f) else {
                    panic!("summed frame must decode");
                };
                assert_eq!(body.len(), 64);
                data += 1;
                // One flipped payload bit is detected, not delivered.
                f[FRAME_HEADER_LEN] ^= 0x10;
                assert_eq!(frame::try_decode(&f), Err(frame::DecodeError::Corrupt));
            }
        }
        assert_eq!(data, 8);
    }
}
