//! The real-socket striping sender: [`NetStripedPath`] is the
//! [`StripedPath`] of the kernel-network world.
//!
//! Same engine, different substrate. The scheduler, marker emission,
//! membership masks and run-grouping logic are all shared with the
//! simulated path (they live in `stripe-core` and are driven
//! identically); what changes is the last inch — instead of asking an
//! analytic [`FifoLink`] *when* a packet of this length would arrive,
//! the net path **encodes a frame and hands it to a
//! [`DatagramLink`]** right now. Consequently:
//!
//! - `arrival: Some(now)` in a [`Transmission`] means "handed to the
//!   network at this instant". The real arrival time is unknowable; the
//!   far end finds out when the frame shows up. `None` still means the
//!   frame never left ([`TxError::QueueFull`] backpressure and friends).
//! - The batch path reuses a pool of encode buffers and offers each
//!   same-channel run through [`DatagramLink::send_run_owned`] — the
//!   zero-copy `sendmmsg` seam: links that defer (the UDP channels) take
//!   the frames' storage into their bounded queues and the **single
//!   end-of-batch flush** submits each channel's whole accumulated burst
//!   as one `mmsghdr` batch, so syscall batch occupancy tracks the burst
//!   size rather than the per-channel run length (SRR runs at large
//!   payloads are only a frame or two long). A steady-state sender still
//!   performs **zero heap allocations per packet**: taken storage is
//!   replaced with recycled buffers that flow back through the pool.
//! - [`ControlPath`] is implemented, so the PR-1
//!   [`FailoverDriver`](stripe_transport::FailoverDriver) drives
//!   liveness probes and membership handshakes over real sockets
//!   unchanged.
//!
//! [`StripedPath`]: stripe_transport::StripedPath
//! [`FifoLink`]: stripe_link::FifoLink

use stripe_core::control::Control;
use stripe_core::receiver::Arrival;
use stripe_core::sched::CausalScheduler;
use stripe_core::sender::{MarkerConfig, StripingSender};
use stripe_core::types::{ChannelId, WireLen};
use stripe_core::Marker;
use stripe_link::{DatagramLink, TxError};
use stripe_netsim::SimTime;
use stripe_transport::{ControlPath, ControlTransmission, PathSnapshot, Transmission, TxBatch};

use crate::frame::{self, FRAME_HEADER_LEN};

/// Builder for [`NetStripedPath`], mirroring
/// [`StripedPathBuilder`](stripe_transport::StripedPathBuilder).
#[derive(Debug)]
pub struct NetStripedPathBuilder<S: CausalScheduler, L: DatagramLink> {
    sched: Option<S>,
    markers: MarkerConfig,
    links: Vec<L>,
    integrity: bool,
}

impl<S: CausalScheduler, L: DatagramLink> Default for NetStripedPathBuilder<S, L> {
    fn default() -> Self {
        Self {
            sched: None,
            markers: MarkerConfig::disabled(),
            links: Vec::new(),
            integrity: false,
        }
    }
}

impl<S: CausalScheduler, L: DatagramLink> NetStripedPathBuilder<S, L> {
    /// The causal scheduler driving channel selection. Required.
    pub fn scheduler(mut self, sched: S) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Marker emission policy. Defaults to [`MarkerConfig::disabled`].
    pub fn markers(mut self, cfg: MarkerConfig) -> Self {
        self.markers = cfg;
        self
    }

    /// The member links, one per scheduler channel. Required.
    pub fn links(mut self, links: Vec<L>) -> Self {
        self.links = links;
        self
    }

    /// Append a single member link.
    pub fn link(mut self, link: L) -> Self {
        self.links.push(link);
        self
    }

    /// Emit data frames with a CRC-8 trailer
    /// ([`KIND_DATA_SUMMED`](crate::frame::KIND_DATA_SUMMED)) so the far
    /// end detects payload corruption instead of delivering flipped bits
    /// (§5's "detectable corruption" assumption made literal). Costs one
    /// byte per frame plus the checksum pass; defaults to off, so the
    /// headline datapath pays nothing.
    pub fn integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        self
    }

    /// Assemble the path.
    ///
    /// # Panics
    /// Panics if no scheduler was supplied or if the link count differs
    /// from the scheduler's channel count.
    pub fn build(self) -> NetStripedPath<S, L> {
        let sched = self.sched.expect("NetStripedPathBuilder needs a scheduler");
        assert_eq!(
            self.links.len(),
            sched.channels(),
            "one link per scheduler channel"
        );
        NetStripedPath {
            links: self.links,
            tx: StripingSender::new(sched, self.markers),
            integrity: self.integrity,
            stats: PathSnapshot::default(),
            scratch_lens: Vec::new(),
            scratch_channels: Vec::new(),
            scratch_markers: Vec::new(),
            scratch_idle_markers: Vec::new(),
            frame_bufs: Vec::new(),
            run_results: Vec::new(),
            ctl_buf: Vec::new(),
        }
    }
}

/// A striping sender bound to real datagram channels.
#[derive(Debug)]
pub struct NetStripedPath<S: CausalScheduler, L: DatagramLink> {
    links: Vec<L>,
    tx: StripingSender<S>,
    /// Data frames carry a CRC-8 trailer (see
    /// [`NetStripedPathBuilder::integrity`]).
    integrity: bool,
    stats: PathSnapshot,
    // Scratch buffers, all reused so the steady state allocates nothing.
    scratch_lens: Vec<usize>,
    scratch_channels: Vec<ChannelId>,
    scratch_markers: Vec<(usize, ChannelId, Marker)>,
    scratch_idle_markers: Vec<(ChannelId, Marker)>,
    /// Recycled frame-encode buffers, one per packet of the largest
    /// batch seen so far (the high-water mark).
    frame_bufs: Vec<Vec<u8>>,
    run_results: Vec<Result<(), TxError>>,
    ctl_buf: Vec<u8>,
}

impl<S: CausalScheduler, L: DatagramLink> NetStripedPath<S, L> {
    /// Start building a path: `NetStripedPath::builder().scheduler(…)
    /// .markers(…).links(…).build()`.
    pub fn builder() -> NetStripedPathBuilder<S, L> {
        NetStripedPathBuilder::default()
    }

    /// The striped *payload* MTU: the minimum member frame MTU minus the
    /// frame header (§6.1's minimum-MTU rule, net of framing).
    pub fn max_payload(&self) -> usize {
        let min_mtu = self.links.iter().map(|l| l.mtu()).min().expect("non-empty");
        let overhead = if self.integrity {
            FRAME_HEADER_LEN + frame::SUM_TRAILER_LEN
        } else {
            FRAME_HEADER_LEN
        };
        min_mtu.saturating_sub(overhead)
    }

    /// Stripe a whole burst at `now` into a caller-owned batch with zero
    /// steady-state heap allocation: `pkts` is drained (capacity stays
    /// with the caller) and `out` is cleared and refilled in offer order
    /// — each data packet, then each marker batch right after the packet
    /// it follows. Channel decisions and marker points are identical to
    /// the simulated path's `send_batch` for the same scheduler state.
    ///
    /// `arrival: Some(now)` means the frame was handed to the network
    /// (or parked in the link's bounded backlog for the next flush);
    /// `None` plus `error` means it never left.
    pub fn send_batch<P: WireLen + AsRef<[u8]>>(
        &mut self,
        now: SimTime,
        pkts: &mut Vec<P>,
        out: &mut TxBatch<P>,
    ) {
        out.clear();
        self.scratch_lens.clear();
        self.scratch_lens.extend(pkts.iter().map(WireLen::wire_len));
        self.tx.send_batch(
            &self.scratch_lens,
            &mut self.scratch_channels,
            &mut self.scratch_markers,
        );

        let n = pkts.len();
        self.stats.sent += n as u64;
        // Encode every frame up front into recycled buffers; the run
        // loop then offers contiguous slices of them.
        while self.frame_bufs.len() < n {
            self.frame_bufs.push(Vec::new());
        }
        for (k, pkt) in pkts.iter().enumerate() {
            if self.integrity {
                frame::encode_data_summed_into(pkt.as_ref(), &mut self.frame_bufs[k]);
            } else {
                frame::encode_data_into(pkt.as_ref(), &mut self.frame_bufs[k]);
            }
        }

        let mut pkt_iter = pkts.drain(..);
        let mut m = 0; // next marker batch to emit
        let mut i = 0;
        while i < n {
            let ch = self.scratch_channels[i];
            // A run extends while the channel repeats and no marker batch
            // is due inside it — markers due after packet `b` must reach
            // the link before packet `b + 1` does, preserving the
            // per-channel FIFO the receiver's recovery relies on.
            let boundary = self.scratch_markers.get(m).map(|&(at, _, _)| at);
            let mut j = i + 1;
            while j < n && self.scratch_channels[j] == ch && boundary.is_none_or(|b| j <= b) {
                j += 1;
            }
            self.run_results.clear();
            self.links[ch].send_run_owned(&mut self.frame_bufs[i..j], &mut self.run_results);
            for k in 0..(j - i) {
                let pkt = pkt_iter.next().expect("one packet per send result");
                let (arrival, error) = match self.run_results[k] {
                    Ok(()) => (Some(now), None),
                    Err(e) => {
                        match e {
                            TxError::QueueFull => self.stats.dropped_queue += 1,
                            _ => self.stats.dropped_lost += 1,
                        }
                        (None, Some(e))
                    }
                };
                out.push(Transmission {
                    channel: ch,
                    arrival,
                    item: Arrival::Data(pkt),
                    error,
                });
            }
            while m < self.scratch_markers.len() && self.scratch_markers[m].0 < j {
                let (at, c, mk) = self.scratch_markers[m];
                m += 1;
                // On links that coalesce equal-length frames into single
                // kernel submissions (GSO), pad the marker to the length
                // of the last data frame sent on its channel: the parked
                // burst then stays one unbroken segmentation train
                // instead of being cut at every marker (GSO permits only
                // one shorter trailing segment per train).
                let pad_to = if self.links[c].coalesce_hint() {
                    (0..=at)
                        .rev()
                        .find(|&k| self.scratch_channels[k] == c)
                        .map(|k| {
                            if self.integrity {
                                frame::summed_frame_len(self.scratch_lens[k])
                            } else {
                                frame::data_frame_len(self.scratch_lens[k])
                            }
                        })
                        .unwrap_or(0)
                } else {
                    0
                };
                // Deferred like the data frames around it: the marker
                // joins channel `c`'s parked burst (FIFO preserved) and
                // the end-of-batch flush below submits it in the same
                // mmsg batch instead of splitting the burst per marker.
                let t = self.transmit_marker(now, c, mk, true, pad_to);
                out.push(t);
            }
            i = j;
        }
        // One flush per link per batch: links that deferred their frames
        // (the UDP channels) submit the whole burst as mmsg batches here.
        for l in &mut self.links {
            l.flush();
        }
    }

    /// Emit a full marker batch into a caller-owned buffer (timer-driven
    /// markers during idle periods). `out` is cleared first.
    pub fn send_markers_into<P>(&mut self, now: SimTime, out: &mut TxBatch<P>) {
        out.clear();
        self.scratch_idle_markers.clear();
        self.tx.make_markers_into(&mut self.scratch_idle_markers);
        for k in 0..self.scratch_idle_markers.len() {
            let (c, mk) = self.scratch_idle_markers[k];
            // Idle markers have no adjacent data frames to match, so
            // padding them buys nothing: pad target 0 (never pad).
            let t = self.transmit_marker(now, c, mk, false, 0);
            out.push(t);
        }
    }

    /// `deferred` markers (mid-batch) join the channel's parked burst for
    /// the end-of-batch flush; eager ones (idle timers) go out now.
    /// `pad_to > 0` requests the padded control encoding stretched to
    /// that wire length (ignored when it wouldn't fit the marker or the
    /// link's MTU) — see `send_batch` for why.
    fn transmit_marker<P>(
        &mut self,
        now: SimTime,
        c: ChannelId,
        mk: Marker,
        deferred: bool,
        pad_to: usize,
    ) -> Transmission<P> {
        self.stats.markers_sent += 1;
        let ctl = Control::Marker(mk);
        if pad_to >= frame::control_frame_len(&ctl) + frame::PAD_LEN_PREFIX
            && pad_to <= self.links[c].mtu()
        {
            frame::encode_control_padded_into(&ctl, pad_to, &mut self.ctl_buf);
        } else {
            frame::encode_control_into(&ctl, &mut self.ctl_buf);
        }
        let r = if deferred {
            self.links[c].send_frame_deferred(&self.ctl_buf)
        } else {
            self.links[c].send_frame(&self.ctl_buf)
        };
        let (arrival, error) = match r {
            Ok(()) => (Some(now), None),
            Err(e) => {
                self.stats.markers_lost += 1;
                (None, Some(e))
            }
        };
        Transmission {
            channel: c,
            arrival,
            item: Arrival::Marker(mk),
            error,
        }
    }

    fn transmit_control_impl(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: &Control,
    ) -> (Option<SimTime>, Option<TxError>) {
        self.stats.control_sent += 1;
        frame::encode_control_into(ctl, &mut self.ctl_buf);
        match self.links[c].send_frame(&self.ctl_buf) {
            Ok(()) => (Some(now), None),
            Err(e) => {
                self.stats.control_lost += 1;
                (None, Some(e))
            }
        }
    }

    /// Try to drain every link's local backlog (after kernel
    /// backpressure). Returns the total number of frames that left.
    pub fn flush(&mut self) -> usize {
        self.links.iter_mut().map(|l| l.flush()).sum()
    }

    /// Frames parked across all link backlogs.
    pub fn backlog(&self) -> usize {
        self.links.iter().map(|l| l.backlog()).sum()
    }

    /// Loss/overhead counters (shared shape with the simulated path).
    pub fn stats(&self) -> PathSnapshot {
        self.stats
    }

    /// The member links.
    pub fn links(&self) -> &[L] {
        &self.links
    }

    /// Mutable access to the member links (the reactor's receive sweep).
    pub fn links_mut(&mut self) -> &mut [L] {
        &mut self.links
    }

    /// Take the links back out, consuming the path — endpoint teardown
    /// wants its sockets (and their final counters) returned.
    pub fn into_links(self) -> Vec<L> {
        self.links
    }

    /// The sender engine (fairness ledgers, marker counts).
    pub fn sender(&self) -> &StripingSender<S> {
        &self.tx
    }

    /// Mutable access to the sender engine (membership, resets).
    pub fn sender_mut(&mut self) -> &mut StripingSender<S> {
        &mut self.tx
    }
}

impl<S: CausalScheduler, L: DatagramLink> ControlPath for NetStripedPath<S, L> {
    fn channels(&self) -> usize {
        self.links.len()
    }

    fn current_round(&self) -> u64 {
        self.tx.scheduler().round()
    }

    fn schedule_mask(&mut self, effective_round: u64, live: &[bool]) {
        self.tx.schedule_mask(effective_round, live);
    }

    fn transmit_control(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: Control,
    ) -> ControlTransmission {
        let (arrival, error) = self.transmit_control_impl(now, c, &ctl);
        ControlTransmission {
            channel: c,
            arrival,
            duplicate: None,
            ctl,
            error,
        }
    }

    fn transmit_control_ref(
        &mut self,
        now: SimTime,
        c: ChannelId,
        ctl: &Control,
    ) -> ControlTransmission {
        let (arrival, error) = self.transmit_control_impl(now, c, ctl);
        ControlTransmission {
            channel: c,
            arrival,
            duplicate: None,
            ctl: ctl.clone(),
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use bytes::Bytes;
    use stripe_core::sched::Srr;
    use stripe_link::{datagram_pair, TestDatagramLink};

    fn two_channel_path(
        markers: MarkerConfig,
    ) -> (NetStripedPath<Srr, TestDatagramLink>, Vec<TestDatagramLink>) {
        let (a0, b0) = datagram_pair(1503, 1024);
        let (a1, b1) = datagram_pair(1503, 1024);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .markers(markers)
            .links(vec![a0, a1])
            .build();
        (path, vec![b0, b1])
    }

    fn drain(link: &mut TestDatagramLink) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        while let Some(n) = link.recv_frame(&mut buf) {
            out.push(buf[..n].to_vec());
        }
        out
    }

    /// Channel decisions must match a bare scheduler fed the same
    /// lengths — the net path shares the sim path's engine exactly.
    #[test]
    fn channel_decisions_match_bare_scheduler() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::disabled());
        let mut bare = Srr::equal(2, 1500);
        let lens = [550usize, 200, 1400, 150, 300, 900, 60, 1200];
        let mut pkts: Vec<Bytes> = lens.iter().map(|&l| Bytes::from(vec![0xAA; l])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        assert_eq!(out.len(), lens.len());
        for (t, &len) in out.iter().zip(&lens) {
            let expect = bare.current();
            bare.advance(len);
            assert_eq!(t.channel, expect);
            assert_eq!(t.arrival, Some(SimTime::ZERO));
        }
        // And the frames really left: payload bytes arrive framed.
        let per_ch: usize = peers.iter_mut().map(|p| drain(p).len()).sum();
        assert_eq!(per_ch, lens.len());
    }

    /// Frames decode back to the exact payloads, in per-channel order,
    /// with markers interleaved at the emission points.
    #[test]
    fn frames_carry_payloads_and_markers() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::every_rounds(2));
        // 100 × 100 B = 10000 B ≈ 3.3 rounds of the 2 × 1500 B quantum:
        // comfortably past round 2, where the first marker batch is due.
        let mut pkts: Vec<Bytes> = (0..100u8).map(|i| Bytes::from(vec![i; 100])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        assert!(path.stats().markers_sent > 0, "markers must have fired");
        let mut data = 0;
        let mut markers = 0;
        for p in &mut peers {
            for f in drain(p) {
                match frame::decode(&f).expect("well-formed frame") {
                    Frame::Data(body) => {
                        assert_eq!(body.len(), 100);
                        assert!(body.iter().all(|&b| b == body[0]));
                        data += 1;
                    }
                    Frame::Control(Control::Marker(_)) => markers += 1,
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        }
        assert_eq!(data, 100);
        assert_eq!(markers as u64, path.stats().markers_sent);
    }

    /// Backpressure surfaces as QueueFull transmissions with no arrival,
    /// counted under dropped_queue — same contract as the sim path.
    #[test]
    fn queue_full_reported_per_packet() {
        let (a0, _b0) = datagram_pair(1503, 2);
        let (a1, _b1) = datagram_pair(1503, 2);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .build();
        let mut pkts: Vec<Bytes> = (0..10).map(|_| Bytes::from(vec![0u8; 1400])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        let failed = out.iter().filter(|t| t.error.is_some()).count();
        assert!(failed > 0, "tiny queues must overflow");
        assert_eq!(path.stats().dropped_queue as usize, failed);
        for t in out.iter().filter(|t| t.error.is_some()) {
            assert_eq!(t.arrival, None);
            assert_eq!(t.error, Some(TxError::QueueFull));
        }
    }

    /// Steady state: batches reuse every scratch buffer, so repeated
    /// sends at the same batch size push the high-water mark once.
    #[test]
    fn idle_markers_cover_live_channels() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::every_rounds(8));
        let mut out: TxBatch<Bytes> = TxBatch::new();
        path.send_markers_into(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        for (c, p) in peers.iter_mut().enumerate() {
            let frames = drain(p);
            assert_eq!(frames.len(), 1);
            match frame::decode(&frames[0]) {
                Some(Frame::Control(Control::Marker(mk))) => assert_eq!(mk.channel, c),
                other => panic!("expected marker, got {other:?}"),
            }
        }
    }

    /// The ControlPath surface transmits real control frames.
    #[test]
    fn control_path_sends_decodable_frames() {
        let (mut path, mut peers) = two_channel_path(MarkerConfig::disabled());
        let t = ControlPath::transmit_control(
            &mut path,
            SimTime::from_nanos(5),
            1,
            Control::Probe { nonce: 77 },
        );
        assert_eq!(t.arrival, Some(SimTime::from_nanos(5)));
        assert_eq!(t.channel, 1);
        let frames = drain(&mut peers[1]);
        assert_eq!(frames.len(), 1);
        assert_eq!(
            frame::decode(&frames[0]),
            Some(Frame::Control(Control::Probe { nonce: 77 }))
        );
        assert_eq!(path.stats().control_sent, 1);
    }

    #[test]
    fn max_payload_subtracts_header_from_min_mtu() {
        let (path, _peers) = two_channel_path(MarkerConfig::disabled());
        assert_eq!(path.max_payload(), 1500);
    }

    /// Integrity mode: every data frame goes out summed, round-trips
    /// through `try_decode`, and a flipped payload bit is caught as
    /// `Corrupt` rather than delivered.
    #[test]
    fn integrity_mode_emits_summed_frames() {
        let (a0, b0) = datagram_pair(1504, 1024);
        let (a1, b1) = datagram_pair(1504, 1024);
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .integrity(true)
            .build();
        assert_eq!(
            path.max_payload(),
            1504 - FRAME_HEADER_LEN - frame::SUM_TRAILER_LEN
        );
        let mut pkts: Vec<Bytes> = (0..8u8).map(|i| Bytes::from(vec![i; 64])).collect();
        let mut out = TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        let mut peers = [b0, b1];
        let mut data = 0;
        for p in &mut peers {
            for mut f in drain(p) {
                assert_eq!(f[2], frame::KIND_DATA_SUMMED, "summed kind on the wire");
                let Ok(Frame::Data(body)) = frame::try_decode(&f) else {
                    panic!("summed frame must decode");
                };
                assert_eq!(body.len(), 64);
                data += 1;
                // One flipped payload bit is detected, not delivered.
                f[FRAME_HEADER_LEN] ^= 0x10;
                assert_eq!(frame::try_decode(&f), Err(frame::DecodeError::Corrupt));
            }
        }
        assert_eq!(data, 8);
    }
}
