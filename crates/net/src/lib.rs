//! Real-socket striping: the simulated SRR datapath running over N
//! kernel UDP sockets.
//!
//! Everything the simulation proved — causal scheduling, logical
//! reception, marker resynchronization, liveness-driven failover — runs
//! here unchanged over real non-blocking sockets. The crate adds only
//! what a real network demands and the simulator abstracted away:
//!
//! - [`frame`] — the canonical on-wire format: a 3-byte header
//!   (magic, version, kind) in front of either a raw payload or a
//!   [`Control`](stripe_core::control::Control) body encoded by the one
//!   shared codec. The simulator's control messages and the wire's are
//!   byte-identical by construction. Version 2 adds a varint flow ID to
//!   data and marker frames (control stays untagged); one shared entry
//!   point decodes both, landing version-1 frames on flow 0.
//! - [`udp`] — [`UdpChannel`], one connected non-blocking UDP socket
//!   per striped channel, with a bounded, buffer-recycling local queue
//!   absorbing kernel backpressure and a run-amortized
//!   (`sendmmsg`-style) batch seam.
//! - [`path`] — [`NetStripedPath`], the sender: the exact
//!   [`StripingSender`](stripe_core::sender::StripingSender) batch
//!   datapath, encoding into recycled frame buffers and handing
//!   channel-runs to the links in single calls.
//! - [`recv`] — [`NetLogicalReceiver`], the receiver: pooled buffers in
//!   from the sockets, payload views through the shared resequencer,
//!   storage recycled on consumption.
//! - [`server`] — [`StripeServer`], the multi-flow sender: thousands of
//!   logical flows over one shared channel set, per-flow state in a
//!   slab behind generation-checked [`FlowHandle`]s, DRR across flows
//!   feeding each flow's own causal SRR, bounded admission.
//!   [`NetStripedPath`] is this with one flow.
//! - [`demux`] — [`FlowDemux`], the multi-flow receiver: flow-tagged
//!   frames routed to per-flow resequencers (each simulating its own
//!   flow's SRR), one shared buffer pool, per-flow FIFO delivery.
//!   [`NetLogicalReceiver`] is this with one flow.
//! - [`reactor`] — [`PathReactor`], the poll loop: flushes backlogs,
//!   sweeps the reverse path, ticks the PR-1 failover driver — generic
//!   over any [`ReactorPath`] ([`SenderReactor`] drives the single-flow
//!   path, [`ServerReactor`] the multi-flow server). No async runtime,
//!   no threads, no new dependencies.
//! - [`clock`] — [`WallClock`], mapping `std::time::Instant` onto
//!   [`SimTime`](stripe_netsim::SimTime) nanoseconds so every
//!   timer-driven component runs on either clock.
//! - [`fault`] — [`DropLink`], deterministic data-frame loss for
//!   proving marker recovery (Theorem 5.1) over real sockets.
//! - [`chaos`] — [`ImpairedLink`]/[`ChaosPlan`], the full seeded
//!   impairment suite (loss, reorder, duplication, corruption, jitter,
//!   partitions) with a [`ChaosSnapshot`] counting every injected
//!   event; `DropLink` is now a thin shim over it.
//! - [`lifecycle`] — [`ChannelLifecycle`], the per-channel recovery
//!   state machine (`live → dead → cooldown → probing → rejoining →
//!   live`) with exponential cooldown, bounded retries, and per-step
//!   timeouts; driven by the reactor, executed through
//!   [`DatagramLink::revive`](stripe_link::DatagramLink::revive).
//! - [`pool`] — [`BufPool`]/[`PooledBuf`], the zero-allocation receive
//!   story.
//! - [`sys`] — the linux-gated `sendmmsg`/`recvmmsg` FFI shim (std-only,
//!   two `extern "C"` declarations) with a portable per-frame fallback
//!   behind the same [`BatchIo`](sys::BatchIo) API; also
//!   `SO_SNDBUF`/`SO_RCVBUF` configuration and the `/proc/net/udp`
//!   kernel-drop estimate.
//! - [`ring`] — a bounded lock-free SPSC ring, the reactor↔worker seam.
//! - [`shard`] — [`ShardedUdpChannel`], a per-channel I/O worker thread
//!   behind the same [`DatagramLink`](stripe_link::DatagramLink)
//!   surface: frames cross bounded SPSC rings of recycled buffers, the
//!   worker batches syscalls with adaptive spin-then-park polling, and
//!   all protocol state (SRR, markers, failover) stays on the reactor
//!   thread.
//!
//! Steady state, neither direction allocates: the send side reuses its
//! scratch and frame buffers, the receive side cycles pooled buffers
//! through the resequencer and back. The `alloc_counting` integration
//! test pins this.

#![warn(missing_docs)]

pub mod adapt;
pub mod chaos;
pub mod clock;
pub mod demux;
pub mod est;
pub mod fault;
pub mod frame;
pub mod lifecycle;
pub mod path;
pub mod pool;
pub mod reactor;
pub mod recv;
pub mod ring;
pub mod server;
pub mod shard;
pub mod sys;
pub mod udp;

pub use adapt::{AdaptiveConfig, AdaptiveSnapshot, AdaptiveTuner};
pub use chaos::{ChaosPlan, ChaosSnapshot, ImpairedLink};
pub use clock::WallClock;
pub use demux::{FlowDemux, FlowDemuxBuilder, FlowDemuxSnapshot};
pub use est::{rate_shares, ChannelEstimator, Ewma};
pub use fault::{DropLink, DropPolicy};
pub use frame::{Frame, FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION};
pub use lifecycle::{
    ChannelLifecycle, LifecycleAction, LifecycleConfig, LifecycleSnapshot, LifecycleState,
};
pub use path::{NetStripedPath, NetStripedPathBuilder};
pub use pool::{BufPool, PooledBuf};
pub use reactor::{
    membership_announced, PathReactor, Periodic, ReactorPath, ReactorSnapshot, SenderReactor,
    ServerReactor,
};
pub use recv::{NetLogicalReceiver, NetLogicalReceiverBuilder, NetRxSnapshot};
pub use ring::{spsc, Consumer, Producer};
pub use server::{
    FlowError, FlowHandle, FlowId, FlowSnapshot, PumpEvent, StripeServer, StripeServerBuilder,
    StripeServerSnapshot,
};
pub use shard::{ShardConfig, ShardedUdpChannel};
pub use sys::BatchIo;
pub use udp::{UdpChannel, UdpChannelBuilder, UdpChannelSnapshot};
