//! One striped channel over one kernel UDP socket.
//!
//! [`UdpChannel`] is the [`DatagramLink`] instance the tentpole runs on:
//! a *connected*, non-blocking `std::net::UdpSocket` per channel, so data
//! frames, markers and control messages for channel `c` all share one
//! 5-tuple — per-flow FIFO on loopback, quasi-FIFO in the wild, which is
//! precisely the channel model the §5 marker recovery tolerates. The
//! reverse path (probe acks, membership acks, credit) rides the same
//! socket in the other direction.
//!
//! Backpressure mirrors the simulated links: when the kernel send buffer
//! is full (`WouldBlock`), frames enter a bounded local queue drained by
//! [`flush`](DatagramLink::flush) on the next reactor pass; when that
//! queue is full too, the send reports [`TxError::QueueFull`] — the same
//! congestion signal a full simulated transmit queue produces, and the
//! loss class the FCVC credit scheme exists to eliminate. Queue buffers
//! are recycled, so backpressure episodes allocate only up to the queue's
//! high-water mark.
//!
//! [`send_run`](DatagramLink::send_run) is the `sendmmsg` seam: one
//! backlog flush per run instead of one per frame, then a straight
//! `send` loop. Outcomes are identical to per-frame sends; only the
//! mechanics are amortized.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};

use stripe_link::{DatagramLink, TxError};

/// Counters for one UDP channel, under the workspace snapshot convention
/// (`dropped_<cause>`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpChannelSnapshot {
    /// Frames handed to the kernel.
    pub sent_frames: u64,
    /// Bytes handed to the kernel.
    pub sent_bytes: u64,
    /// Frames received from the kernel.
    pub recv_frames: u64,
    /// Bytes received from the kernel.
    pub recv_bytes: u64,
    /// Frames parked in the local queue after kernel backpressure.
    pub queued: u64,
    /// Frames dropped because the local queue was full.
    pub dropped_queue: u64,
    /// Frames dropped on a hard socket error.
    pub dropped_error: u64,
}

/// One striped channel: a connected non-blocking UDP socket plus a
/// bounded, buffer-recycling send queue.
#[derive(Debug)]
pub struct UdpChannel {
    sock: UdpSocket,
    mtu: usize,
    queue: VecDeque<Vec<u8>>,
    recycle: Vec<Vec<u8>>,
    queue_cap: usize,
    stats: UdpChannelSnapshot,
}

impl UdpChannel {
    /// Bind an unconnected channel to an ephemeral loopback port.
    /// Connect it with [`connect`](Self::connect) before use.
    pub fn bind_loopback(mtu: usize, queue_cap: usize) -> io::Result<Self> {
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        sock.set_nonblocking(true)?;
        Ok(Self {
            sock,
            mtu,
            queue: VecDeque::new(),
            recycle: Vec::new(),
            queue_cap,
            stats: UdpChannelSnapshot::default(),
        })
    }

    /// Connect to the peer endpoint: from here on, `send`/`recv` use this
    /// single 5-tuple and stray datagrams from other sources are filtered
    /// by the kernel.
    pub fn connect(&self, peer: SocketAddr) -> io::Result<()> {
        self.sock.connect(peer)
    }

    /// The local socket address (to tell the peer).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// A connected pair of loopback channels — one striped channel's two
    /// endpoints, for tests, examples and benches.
    pub fn pair(mtu: usize, queue_cap: usize) -> io::Result<(Self, Self)> {
        let a = Self::bind_loopback(mtu, queue_cap)?;
        let b = Self::bind_loopback(mtu, queue_cap)?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        Ok((a, b))
    }

    /// Counters.
    pub fn stats(&self) -> UdpChannelSnapshot {
        self.stats
    }

    /// Park a frame in the bounded local queue, recycling storage.
    fn enqueue(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if self.queue.len() >= self.queue_cap {
            self.stats.dropped_queue += 1;
            return Err(TxError::QueueFull);
        }
        let mut buf = self.recycle.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(frame);
        self.queue.push_back(buf);
        self.stats.queued += 1;
        Ok(())
    }

    /// Offer one frame to the kernel, assuming the local queue is empty
    /// (callers preserve FIFO by checking first).
    fn try_send(&mut self, frame: &[u8]) -> Result<(), TxError> {
        match self.sock.send(frame) {
            Ok(_) => {
                self.stats.sent_frames += 1;
                self.stats.sent_bytes += frame.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.enqueue(frame),
            Err(_) => {
                self.stats.dropped_error += 1;
                Err(TxError::LinkDown)
            }
        }
    }
}

impl DatagramLink for UdpChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if frame.len() > self.mtu {
            return Err(TxError::TooBig);
        }
        self.flush();
        if !self.queue.is_empty() {
            // Earlier frames are still parked: keep FIFO by joining them.
            return self.enqueue(frame);
        }
        self.try_send(frame)
    }

    fn send_run(&mut self, frames: &[Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        // One backlog flush per run — the sendmmsg seam — then straight
        // sends. Outcomes match per-frame send_frame calls exactly.
        self.flush();
        out.reserve(frames.len());
        for frame in frames {
            let r = if frame.len() > self.mtu {
                Err(TxError::TooBig)
            } else if !self.queue.is_empty() {
                self.enqueue(frame)
            } else {
                self.try_send(frame)
            };
            out.push(r);
        }
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        match self.sock.recv(buf) {
            Ok(n) => {
                self.stats.recv_frames += 1;
                self.stats.recv_bytes += n as u64;
                Some(n)
            }
            Err(_) => None, // WouldBlock or transient error: nothing ready
        }
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn flush(&mut self) -> usize {
        let mut drained = 0;
        while let Some(front) = self.queue.front() {
            match self.sock.send(front) {
                Ok(_) => {
                    self.stats.sent_frames += 1;
                    self.stats.sent_bytes += front.len() as u64;
                    let buf = self.queue.pop_front().expect("front() just succeeded");
                    self.recycle.push(buf);
                    drained += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Hard error: the frame will never leave; drop it
                    // rather than wedge the queue.
                    self.stats.dropped_error += 1;
                    let buf = self.queue.pop_front().expect("front() just succeeded");
                    self.recycle.push(buf);
                }
            }
        }
        drained
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_moves_frames_both_ways() {
        let (mut a, mut b) = UdpChannel::pair(1500, 8).unwrap();
        a.send_frame(&[1, 2, 3]).unwrap();
        b.send_frame(&[9]).unwrap();
        let mut buf = [0u8; 1500];
        // Loopback delivery is immediate but poll to be safe.
        let n = recv_poll(&mut b, &mut buf).expect("frame a->b");
        assert_eq!(&buf[..n], &[1, 2, 3]);
        let n = recv_poll(&mut a, &mut buf).expect("frame b->a");
        assert_eq!(&buf[..n], &[9]);
        assert_eq!(a.stats().sent_frames, 1);
        assert_eq!(a.stats().recv_frames, 1);
    }

    #[test]
    fn frames_arrive_in_order_on_loopback() {
        let (mut a, mut b) = UdpChannel::pair(256, 8).unwrap();
        for i in 0..32u8 {
            a.send_frame(&[i]).unwrap();
        }
        let mut buf = [0u8; 256];
        for want in 0..32u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (1, want));
        }
    }

    #[test]
    fn oversized_frame_rejected_before_the_kernel() {
        let (mut a, _b) = UdpChannel::pair(16, 4).unwrap();
        assert_eq!(a.send_frame(&[0u8; 17]), Err(TxError::TooBig));
        assert_eq!(a.stats().sent_frames, 0);
    }

    #[test]
    fn send_run_outcomes_match_per_frame() {
        let (mut a, mut b) = UdpChannel::pair(64, 4).unwrap();
        let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert_eq!(out, vec![Ok(()), Ok(()), Ok(()), Ok(())]);
        let mut buf = [0u8; 64];
        for i in 0..4u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (8, i));
        }
    }

    /// Loopback UDP can reorder across *sockets* but a single connected
    /// socket pair is FIFO; receives may simply lag the send by a
    /// scheduling quantum, so tests poll briefly.
    fn recv_poll(ch: &mut UdpChannel, buf: &mut [u8]) -> Option<usize> {
        for _ in 0..1000 {
            if let Some(n) = ch.recv_frame(buf) {
                return Some(n);
            }
            std::thread::yield_now();
        }
        None
    }
}
