//! One striped channel over one kernel UDP socket.
//!
//! [`UdpChannel`] is the [`DatagramLink`] instance the real-socket
//! datapath runs on: a *connected*, non-blocking `std::net::UdpSocket`
//! per channel, so data frames, markers and control messages for channel
//! `c` all share one 5-tuple — per-flow FIFO on loopback, quasi-FIFO in
//! the wild, which is precisely the channel model the §5 marker recovery
//! tolerates. The reverse path (probe acks, membership acks, credit)
//! rides the same socket in the other direction.
//!
//! Since PR 4 the channel is **syscall-batched**: whole frame runs go to
//! the kernel as one `sendmmsg` batch and receives drain the socket in
//! `recvmmsg` batches (see [`crate::sys`]), with a portable per-frame
//! fallback behind the same API. The split of labor:
//!
//! - [`send_run`](DatagramLink::send_run) — *eager*: flush the backlog,
//!   then submit the run as mmsg batches. One syscall per
//!   [`batch`](UdpChannelBuilder::batch) frames.
//! - [`send_run_owned`](DatagramLink::send_run_owned) — *deferred*: take
//!   each frame's storage into the bounded local queue (zero copies,
//!   storage swapped against recycled buffers) and let the next
//!   [`flush`](DatagramLink::flush) — which batch senders call once per
//!   burst — drain the whole queue in mmsg batches. This is what lifts
//!   batch occupancy above the per-run packet count: SRR runs at large
//!   payloads are only 1–2 frames long, but a burst parks many frames
//!   per channel before the single flush.
//! - [`recv_run`](DatagramLink::recv_run) — drain up to a buffer-array's
//!   worth of datagrams in one `recvmmsg`.
//!
//! Backpressure mirrors the simulated links: when the kernel refuses a
//! frame (`WouldBlock`), frames park in the bounded local queue for the
//! next flush; when that queue is full too, the send reports
//! [`TxError::QueueFull`] — the same congestion signal a full simulated
//! transmit queue produces. Queue buffers are recycled, so backpressure
//! episodes allocate only up to the queue's high-water mark.
//!
//! The snapshot counts syscalls on both directions, so
//! `syscalls_per_packet` and batch occupancy are first-class, and it
//! reports the effective `SO_SNDBUF`/`SO_RCVBUF` plus a
//! [`dropped_rcvbuf`](UdpChannelSnapshot::dropped_rcvbuf) estimate of
//! kernel receive-buffer overflow — losses that were previously
//! invisible and surfaced only as §5 marker recoveries.
//!
//! **Socket-error recovery.** Hard send errors no longer funnel
//! straight into `TxError::LinkDown`; the channel runs a small
//! recovery state machine keyed on the errno:
//!
//! - `ECONNREFUSED` — a connected UDP socket echoes the peer's ICMP
//!   port-unreachable back on the *next* send. One echo is transient
//!   (the peer may be restarting), so the frame re-queues and a score
//!   (+2 per refusal) tracks persistence; past [`REFUSED_DEAD_SCORE`]
//!   the channel declares itself dead. Only *inbound* traffic — proof
//!   the peer is alive — decays the score (−1 per receive): a
//!   kernel-accepted send proves nothing about the peer, and ICMP
//!   echoes are rate-limited, so accepted sends interleaving with the
//!   refusals they provoked must never outvote them.
//! - `ENOBUFS` — kernel transmit memory, not our queue: the frame
//!   stays parked and the next [`ENOBUFS_BACKOFF`] flushes are skipped
//!   to let the NIC drain rather than hammering the syscall.
//! - `EMSGSIZE` — the path MTU shrank under us: clamp the channel MTU
//!   below the refused frame's length, demote GSO (super-datagrams are
//!   the first casualties of a shrunken path), and report the frame
//!   [`TxError::TooBig`].
//! - anything else — counted; [`HARD_DEAD_STREAK`] *consecutive* fatal
//!   errors declare the channel dead.
//!
//! A dead channel fails every send fast with `LinkDown`, drains its
//! queue (frames counted `dropped_error`, buffers recycled), and
//! reports [`DatagramLink::link_dead`] — which the sender reactor
//! feeds to the failover driver, retiring the channel through the same
//! §liveness path a silent channel takes. No `io::Error` ever bubbles
//! out of the datapath.
//!
//! **Socket recreation.** Death is no longer terminal: the lifecycle
//! machinery (see [`crate::lifecycle`]) calls
//! [`revive`](DatagramLink::revive) after the cooldown, and the channel
//! rebuilds itself from its remembered [`ChannelSpec`] — a *fresh*
//! connected socket on the **same local port** (the peer's connected
//! socket filters by 5-tuple, so the port must survive the swap) with
//! a fresh [`BatchIo`]. Every acquired penalty is scoped to the socket
//! generation and resets with it: the refusal score, the ENOBUFS
//! backoff, the fatal streak, the EMSGSIZE MTU clamp, and the GSO
//! demotion all start over, to be re-proved or re-acquired against the
//! new path. The revived channel reports itself
//! [`LifecycleState::Probing`] until the first inbound frame arrives.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};

use stripe_link::{DatagramLink, TxError};

use crate::lifecycle::LifecycleState;
use crate::sys::{self, BatchIo};

/// Refusal score at which a channel stops believing `ECONNREFUSED` is
/// transient. Refusals add 2; inbound frames (proof the peer lives)
/// subtract 1; accepted sends subtract nothing — the kernel accepting
/// a datagram says nothing about the peer, and ICMP echoes are
/// rate-limited. A truly-gone peer crosses this within a handful of
/// echoes; a restarting peer's blip decays as soon as its traffic
/// resumes.
pub const REFUSED_DEAD_SCORE: u32 = 16;

/// Consecutive unclassified hard errors before the channel is dead.
pub const HARD_DEAD_STREAK: u32 = 8;

/// Flushes skipped after the kernel reports `ENOBUFS`.
pub const ENOBUFS_BACKOFF: u32 = 4;

const ECONNREFUSED: i32 = 111;
const ENOBUFS: i32 = 105;
const EMSGSIZE: i32 = 90;

/// What a hard send error means for the recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendFailure {
    /// `ECONNREFUSED`: ICMP echo from the peer — transient until proven
    /// persistent.
    Refused,
    /// `ENOBUFS`: kernel transmit buffers exhausted — back off.
    NoBufs,
    /// `EMSGSIZE`: the path MTU shrank — clamp and demote GSO.
    MsgSize,
    /// Anything else — fatal if it keeps happening.
    Fatal,
}

fn classify_errno(errno: Option<i32>) -> SendFailure {
    match errno {
        Some(ECONNREFUSED) => SendFailure::Refused,
        Some(ENOBUFS) => SendFailure::NoBufs,
        Some(EMSGSIZE) => SendFailure::MsgSize,
        _ => SendFailure::Fatal,
    }
}

fn classify_error(e: &io::Error) -> SendFailure {
    if e.raw_os_error().is_some() {
        classify_errno(e.raw_os_error())
    } else if e.kind() == io::ErrorKind::ConnectionRefused {
        SendFailure::Refused
    } else {
        SendFailure::Fatal
    }
}

/// Counters for one UDP channel, under the workspace snapshot convention
/// (`dropped_<cause>`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpChannelSnapshot {
    /// Frames handed to the kernel.
    pub sent_frames: u64,
    /// Bytes handed to the kernel.
    pub sent_bytes: u64,
    /// Frames received from the kernel.
    pub recv_frames: u64,
    /// Bytes received from the kernel.
    pub recv_bytes: u64,
    /// Frames parked in the local queue (deferred sends and kernel
    /// backpressure).
    pub queued: u64,
    /// Frames dropped because the local queue was full.
    pub dropped_queue: u64,
    /// Frames dropped on a hard socket error.
    pub dropped_error: u64,
    /// Send-direction syscalls (`sendmmsg`, or per-frame `send` on the
    /// fallback path, including calls that reported backpressure).
    pub send_syscalls: u64,
    /// Receive-direction syscalls (`recvmmsg`/`recv`, including the ones
    /// that found the queue empty).
    pub recv_syscalls: u64,
    /// Effective `SO_SNDBUF` in bytes (0 = unknown/unsupported).
    pub sndbuf: u64,
    /// Effective `SO_RCVBUF` in bytes (0 = unknown/unsupported).
    pub rcvbuf: u64,
    /// Kernel receive-buffer overflow estimate (`/proc/net/udp` drops),
    /// populated by [`UdpChannel::stats_sampled`] — 0 until sampled.
    pub dropped_rcvbuf: u64,
    /// `ECONNREFUSED` echoes absorbed as transient (frame re-queued).
    pub transient_refused: u64,
    /// `ENOBUFS` episodes that triggered a flush backoff.
    pub enobufs_backoffs: u64,
    /// `EMSGSIZE` recoveries: MTU clamped, GSO demoted.
    pub mtu_clamps: u64,
    /// The channel's own view of its lifecycle: `Live` while flowing,
    /// `Dead` once [`UdpChannel::is_dead`], `Probing` between a socket
    /// rebuild and the first inbound frame. (The cooldown/rejoining
    /// phases live in the reactor's [`crate::lifecycle`] machine — the
    /// channel itself only knows about its socket.)
    pub lifecycle: LifecycleState,
    /// Socket generation: 0 for the original socket, +1 per successful
    /// rebuild. Penalties (refusal score, MTU clamp, GSO demotion) are
    /// scoped to one generation.
    pub generation: u64,
    /// Completed revivals: rebuilt sockets that went on to hear the
    /// peer again (`Probing` → `Live`).
    pub rejoins: u64,
    /// Socket rebuild attempts (successful or not).
    pub revive_attempts: u64,
}

impl UdpChannelSnapshot {
    /// Average frames per send syscall — the batch-occupancy figure of
    /// merit (1.0 on the per-frame path, up to the batch cap here).
    pub fn send_batch_occupancy(&self) -> f64 {
        if self.send_syscalls == 0 {
            0.0
        } else {
            self.sent_frames as f64 / self.send_syscalls as f64
        }
    }

    /// Average frames per receive syscall (empty polls included).
    pub fn recv_batch_occupancy(&self) -> f64 {
        if self.recv_syscalls == 0 {
            0.0
        } else {
            self.recv_frames as f64 / self.recv_syscalls as f64
        }
    }

    /// Total syscalls divided by total frames moved, both directions —
    /// the number this PR exists to shrink.
    pub fn syscalls_per_packet(&self) -> f64 {
        let frames = self.sent_frames + self.recv_frames;
        if frames == 0 {
            0.0
        } else {
            (self.send_syscalls + self.recv_syscalls) as f64 / frames as f64
        }
    }

    /// Fold an earlier incarnation's counters into this snapshot.
    /// Counters add; point-in-time gauges (buffer sizes, the sampled
    /// kernel-drop estimate, lifecycle, generation) keep this
    /// snapshot's values. The shard facade uses this to keep telemetry
    /// cumulative across worker respawns.
    pub fn accumulated(&self, earlier: &UdpChannelSnapshot) -> UdpChannelSnapshot {
        UdpChannelSnapshot {
            sent_frames: self.sent_frames + earlier.sent_frames,
            sent_bytes: self.sent_bytes + earlier.sent_bytes,
            recv_frames: self.recv_frames + earlier.recv_frames,
            recv_bytes: self.recv_bytes + earlier.recv_bytes,
            queued: self.queued + earlier.queued,
            dropped_queue: self.dropped_queue + earlier.dropped_queue,
            dropped_error: self.dropped_error + earlier.dropped_error,
            send_syscalls: self.send_syscalls + earlier.send_syscalls,
            recv_syscalls: self.recv_syscalls + earlier.recv_syscalls,
            sndbuf: self.sndbuf,
            rcvbuf: self.rcvbuf,
            dropped_rcvbuf: self.dropped_rcvbuf,
            transient_refused: self.transient_refused + earlier.transient_refused,
            enobufs_backoffs: self.enobufs_backoffs + earlier.enobufs_backoffs,
            mtu_clamps: self.mtu_clamps + earlier.mtu_clamps,
            lifecycle: self.lifecycle,
            generation: self.generation,
            rejoins: self.rejoins + earlier.rejoins,
            revive_attempts: self.revive_attempts + earlier.revive_attempts,
        }
    }
}

/// Everything needed to rebuild a channel's socket from scratch: the
/// bound local endpoint, the connected peer, and the builder knobs.
/// Captured at bind/connect time, consumed by
/// [`revive`](DatagramLink::revive) (in-place socket swap) and by the
/// shard supervisor when a panicked worker took its channel down with
/// it. The `mtu` here is the *configured* MTU — EMSGSIZE clamps apply
/// to the live channel only, so a rebuilt socket re-probes the path
/// from the configured value.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    local: SocketAddr,
    peer: Option<SocketAddr>,
    mtu: usize,
    queue_cap: usize,
    batch: usize,
    sndbuf: Option<usize>,
    rcvbuf: Option<usize>,
    force_fallback: bool,
}

/// Builder for [`UdpChannel`]: MTU, queue depth, mmsg batch size, kernel
/// socket buffer sizes, and the portable-fallback override.
#[derive(Debug, Clone)]
pub struct UdpChannelBuilder {
    mtu: usize,
    queue_cap: usize,
    batch: usize,
    sndbuf: Option<usize>,
    rcvbuf: Option<usize>,
    force_fallback: bool,
}

impl UdpChannelBuilder {
    /// Start from an MTU; everything else has serviceable defaults
    /// (queue 4096 frames, batch [`sys::DEFAULT_BATCH`], kernel buffer
    /// sizes left to the system).
    pub fn new(mtu: usize) -> Self {
        Self {
            mtu,
            queue_cap: 1 << 12,
            batch: sys::DEFAULT_BATCH,
            sndbuf: None,
            rcvbuf: None,
            force_fallback: false,
        }
    }

    /// Bounded local send-queue depth, in frames.
    pub fn queue_cap(mut self, frames: usize) -> Self {
        self.queue_cap = frames;
        self
    }

    /// Frames per `mmsghdr` batch (send and receive).
    pub fn batch(mut self, frames: usize) -> Self {
        self.batch = frames.max(1);
        self
    }

    /// Request `SO_SNDBUF` bytes (the kernel may round; the effective
    /// value lands in the snapshot).
    pub fn sndbuf(mut self, bytes: usize) -> Self {
        self.sndbuf = Some(bytes);
        self
    }

    /// Request `SO_RCVBUF` bytes (see [`sndbuf`](Self::sndbuf)).
    pub fn rcvbuf(mut self, bytes: usize) -> Self {
        self.rcvbuf = Some(bytes);
        self
    }

    /// Pin this channel to the portable per-frame syscall path even
    /// where `sendmmsg`/`recvmmsg` are available (the process-wide
    /// `STRIPE_NET_FALLBACK=1` does the same for every channel).
    pub fn force_fallback(mut self, yes: bool) -> Self {
        self.force_fallback = yes;
        self
    }

    /// Bind an unconnected channel to an ephemeral loopback port.
    /// Connect it with [`UdpChannel::connect`] before use.
    pub fn bind_loopback(&self) -> io::Result<UdpChannel> {
        self.bind(SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// Bind an unconnected channel to `addr`.
    pub fn bind(&self, addr: SocketAddr) -> io::Result<UdpChannel> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        let spec = ChannelSpec {
            // The *effective* local endpoint, so a rebuild after an
            // ephemeral-port bind re-claims the same port.
            local: sock.local_addr()?,
            peer: None,
            mtu: self.mtu,
            queue_cap: self.queue_cap,
            batch: self.batch,
            sndbuf: self.sndbuf,
            rcvbuf: self.rcvbuf,
            force_fallback: self.force_fallback,
        };
        let (sndbuf, rcvbuf) = sys::configure_buffers(&sock, self.sndbuf, self.rcvbuf);
        let stats = UdpChannelSnapshot {
            sndbuf,
            rcvbuf,
            ..Default::default()
        };
        let mut io = BatchIo::new(self.batch, self.force_fallback);
        if io.batched() {
            // GRO makes the kernel deliver coalesced segment trains; the
            // BatchIo splitter must know to take receives apart again.
            io.set_gro(sys::configure_offload(&sock));
        }
        // Pre-stock one batch's worth of full-capacity queue buffers:
        // deferred sends and markers draw on this pool at rates that
        // drift with the marker phase, and lazily growing it mid-run
        // would show up as steady-state allocations.
        let recycle = (0..self.batch)
            .map(|_| Vec::with_capacity(self.mtu))
            .collect();
        Ok(UdpChannel {
            sock,
            spec,
            mtu: self.mtu,
            queue: VecDeque::new(),
            recycle,
            queue_cap: self.queue_cap,
            io,
            stats,
            refused_score: 0,
            hard_streak: 0,
            backoff_flushes: 0,
            dead: false,
        })
    }

    /// A connected pair of loopback channels — one striped channel's two
    /// endpoints, for tests, examples and benches.
    pub fn pair(&self) -> io::Result<(UdpChannel, UdpChannel)> {
        let mut a = self.bind_loopback()?;
        let mut b = self.bind_loopback()?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        Ok((a, b))
    }
}

/// One striped channel: a connected non-blocking UDP socket plus a
/// bounded, buffer-recycling send queue, batched through
/// [`BatchIo`](crate::sys::BatchIo).
#[derive(Debug)]
pub struct UdpChannel {
    sock: UdpSocket,
    /// How to rebuild the socket from scratch (see [`ChannelSpec`]).
    spec: ChannelSpec,
    mtu: usize,
    queue: VecDeque<Vec<u8>>,
    recycle: Vec<Vec<u8>>,
    queue_cap: usize,
    io: BatchIo,
    stats: UdpChannelSnapshot,
    /// Decaying `ECONNREFUSED` score (see [`REFUSED_DEAD_SCORE`]).
    refused_score: u32,
    /// Consecutive unclassified hard errors (see [`HARD_DEAD_STREAK`]).
    hard_streak: u32,
    /// Flushes left to skip after `ENOBUFS` (see [`ENOBUFS_BACKOFF`]).
    backoff_flushes: u32,
    /// Permanently failed: every send is `LinkDown`, the reactor
    /// surfaces it to failover.
    dead: bool,
}

impl UdpChannel {
    /// Start building a channel with non-default batch, queue, or kernel
    /// buffer settings.
    pub fn builder(mtu: usize) -> UdpChannelBuilder {
        UdpChannelBuilder::new(mtu)
    }

    /// Bind an unconnected channel to an ephemeral loopback port with
    /// default batching. Connect it with [`connect`](Self::connect)
    /// before use.
    pub fn bind_loopback(mtu: usize, queue_cap: usize) -> io::Result<Self> {
        UdpChannelBuilder::new(mtu)
            .queue_cap(queue_cap)
            .bind_loopback()
    }

    /// Connect to the peer endpoint: from here on, `send`/`recv` use this
    /// single 5-tuple and stray datagrams from other sources are filtered
    /// by the kernel. The peer is remembered so a socket rebuild
    /// ([`revive`](DatagramLink::revive)) can reconnect.
    pub fn connect(&mut self, peer: SocketAddr) -> io::Result<()> {
        self.sock.connect(peer)?;
        self.spec.peer = Some(peer);
        Ok(())
    }

    /// The local socket address (to tell the peer).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// A connected pair of loopback channels with default batching.
    pub fn pair(mtu: usize, queue_cap: usize) -> io::Result<(Self, Self)> {
        UdpChannelBuilder::new(mtu).queue_cap(queue_cap).pair()
    }

    /// Counters. `dropped_rcvbuf` holds the last sampled value (see
    /// [`stats_sampled`](Self::stats_sampled)).
    pub fn stats(&self) -> UdpChannelSnapshot {
        self.stats
    }

    /// Counters with a fresh [`kernel_drops`](Self::kernel_drops) sample
    /// in `dropped_rcvbuf`. Reads procfs — call at reporting time, not
    /// per packet.
    pub fn stats_sampled(&mut self) -> UdpChannelSnapshot {
        self.stats.dropped_rcvbuf = self.kernel_drops();
        self.stats
    }

    /// Estimate of datagrams the kernel dropped on this socket's receive
    /// buffer (see [`sys::socket_drops_port`]).
    pub fn kernel_drops(&self) -> u64 {
        match self.sock.local_addr() {
            Ok(addr) => sys::socket_drops_port(addr.port()),
            Err(_) => 0,
        }
    }

    /// Bounded local queue depth, in frames.
    pub fn queue_capacity(&self) -> usize {
        self.queue_cap
    }

    /// Whether sends/receives go through the batched mmsg syscalls
    /// (false on the portable fallback).
    pub fn batched_syscalls(&self) -> bool {
        self.io.batched()
    }

    /// Whether equal-size frame runs go out as GSO super-datagrams
    /// (demoted at runtime if the kernel rejects `UDP_SEGMENT`).
    pub fn gso_offload(&self) -> bool {
        self.io.gso_active()
    }

    /// Whether this socket receives GRO-coalesced trains (split back
    /// into frames by the receive path).
    pub fn gro_offload(&self) -> bool {
        self.io.gro()
    }

    /// A recycled buffer, or a fresh one carrying full MTU capacity.
    /// Fresh buffers MUST be pre-sized: a zero-capacity vec entering the
    /// recycle cycle would grow under some later frame encode, breaking
    /// the zero-allocations-per-packet steady state.
    fn recycled_buf(&mut self) -> Vec<u8> {
        self.recycle
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.mtu))
    }

    /// Park a frame in the bounded local queue, copying into recycled
    /// storage.
    fn enqueue(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if self.queue.len() >= self.queue_cap {
            self.stats.dropped_queue += 1;
            return Err(TxError::QueueFull);
        }
        let mut buf = self.recycled_buf();
        buf.clear();
        buf.extend_from_slice(frame);
        self.queue.push_back(buf);
        self.stats.queued += 1;
        Ok(())
    }

    /// Park a frame by *taking* its storage, handing a recycled buffer
    /// back in its place — the zero-copy twin of
    /// [`enqueue`](Self::enqueue).
    fn enqueue_owned(&mut self, frame: &mut Vec<u8>) -> Result<(), TxError> {
        if self.queue.len() >= self.queue_cap {
            self.stats.dropped_queue += 1;
            return Err(TxError::QueueFull);
        }
        let replacement = self.recycled_buf();
        self.queue.push_back(std::mem::replace(frame, replacement));
        self.stats.queued += 1;
        Ok(())
    }

    /// Whether the channel has declared itself permanently failed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The kernel accepted a send: fatal streaks reset. The refusal
    /// score is *not* forgiven here — acceptance proves the local
    /// syscall path, not the peer (see [`note_alive`](Self::note_alive)).
    fn note_success(&mut self) {
        self.hard_streak = 0;
    }

    /// Inbound traffic arrived: the peer demonstrably lives, so refusal
    /// evidence decays — and a rebuilt socket that was still probing has
    /// now heard the path end to end, completing its revival.
    fn note_alive(&mut self) {
        self.refused_score = self.refused_score.saturating_sub(1);
        if self.stats.lifecycle == LifecycleState::Probing {
            self.stats.lifecycle = LifecycleState::Live;
            self.stats.rejoins += 1;
        }
    }

    /// One `ECONNREFUSED` echo. Returns `true` while still transient.
    fn note_refused(&mut self) -> bool {
        self.stats.transient_refused += 1;
        self.refused_score += 2;
        if self.refused_score >= REFUSED_DEAD_SCORE {
            self.declare_dead();
        }
        !self.dead
    }

    fn note_nobufs(&mut self) {
        self.stats.enobufs_backoffs += 1;
        self.backoff_flushes = ENOBUFS_BACKOFF;
    }

    /// `EMSGSIZE` for a frame of `frame_len` bytes: the path takes less
    /// than we believed, so believe the evidence.
    fn note_msgsize(&mut self, frame_len: usize) {
        self.stats.mtu_clamps += 1;
        let clamped = frame_len.saturating_sub(1).max(1);
        if clamped < self.mtu {
            self.mtu = clamped;
        }
        self.io.demote_gso();
    }

    /// One unclassified hard error; enough in a row kill the channel.
    fn note_fatal(&mut self) {
        self.stats.dropped_error += 1;
        self.hard_streak += 1;
        if self.hard_streak >= HARD_DEAD_STREAK {
            self.declare_dead();
        }
    }

    /// The socket has failed: fail sends fast and hand the queued
    /// frames' storage back to the recycle pool (counted, never
    /// silently). Not a point of no return since the lifecycle work:
    /// [`revive`](DatagramLink::revive) rebuilds the socket after the
    /// reactor's cooldown.
    fn declare_dead(&mut self) {
        if self.dead {
            return;
        }
        self.dead = true;
        self.stats.lifecycle = LifecycleState::Dead;
        while let Some(buf) = self.queue.pop_front() {
            self.stats.dropped_error += 1;
            self.recycle.push(buf);
        }
    }

    /// Kill the socket from outside, exactly as a fatal-errno streak
    /// would from inside: sends fail fast, the queue drains into the
    /// recycle pool, [`DatagramLink::link_dead`] raises. The chaos/ops
    /// hook the flap soak uses to force real die→rejoin cycles (the
    /// in-crate tests use the same path via `force_dead`).
    pub fn inject_socket_death(&mut self) {
        self.declare_dead();
    }

    /// The rebuild recipe captured at bind/connect time.
    pub(crate) fn spec(&self) -> &ChannelSpec {
        &self.spec
    }

    /// Rebuild a channel from its spec — the shard supervisor's path
    /// when a panicked worker took the old `UdpChannel` down with its
    /// stack. `generation` seeds the new channel's generation gauge so
    /// the telemetry keeps counting across incarnations; a non-zero
    /// generation starts in [`LifecycleState::Probing`] (it must
    /// re-prove the path), generation 0 is an original socket.
    pub(crate) fn from_spec(spec: &ChannelSpec, generation: u64) -> io::Result<UdpChannel> {
        let builder = UdpChannelBuilder {
            mtu: spec.mtu,
            queue_cap: spec.queue_cap,
            batch: spec.batch,
            sndbuf: spec.sndbuf,
            rcvbuf: spec.rcvbuf,
            force_fallback: spec.force_fallback,
        };
        let mut chan = builder.bind(spec.local)?;
        if let Some(peer) = spec.peer {
            chan.connect(peer)?;
        }
        chan.stats.generation = generation;
        if generation > 0 {
            chan.stats.lifecycle = LifecycleState::Probing;
        }
        Ok(chan)
    }

    /// Swap in a fresh connected socket on the same local port and
    /// reset every generation-scoped penalty: refusal score, fatal
    /// streak, ENOBUFS backoff, the EMSGSIZE MTU clamp, and (via the
    /// fresh [`BatchIo`]) the GSO demotion. The channel comes back in
    /// [`LifecycleState::Probing`] — alive for I/O but unproven until
    /// the first inbound frame. Reviving a channel that never died is
    /// a no-op. On error the channel stays dead (the old socket is
    /// already gone; the lifecycle backs off and retries).
    pub fn revive_socket(&mut self) -> io::Result<()> {
        if !self.dead {
            return Ok(());
        }
        self.stats.revive_attempts += 1;
        // Free our local port *first*: as long as the old (broken)
        // socket lives, rebinding its port fails. Park a throwaway
        // unbound-equivalent socket in its place so `self.sock` stays
        // valid even if the rebind fails.
        let dummy = UdpSocket::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        drop(std::mem::replace(&mut self.sock, dummy));
        let fresh = UdpSocket::bind(self.spec.local)?;
        fresh.set_nonblocking(true)?;
        let (sndbuf, rcvbuf) = sys::configure_buffers(&fresh, self.spec.sndbuf, self.spec.rcvbuf);
        self.stats.sndbuf = sndbuf;
        self.stats.rcvbuf = rcvbuf;
        // A fresh BatchIo starts with GSO enabled again: offload
        // demotion was evidence about the *old* path.
        let mut io = BatchIo::new(self.spec.batch, self.spec.force_fallback);
        if io.batched() {
            io.set_gro(sys::configure_offload(&fresh));
        }
        if let Some(peer) = self.spec.peer {
            fresh.connect(peer)?;
        }
        self.sock = fresh;
        self.io = io;
        self.mtu = self.spec.mtu;
        self.refused_score = 0;
        self.hard_streak = 0;
        self.backoff_flushes = 0;
        self.dead = false;
        self.stats.generation += 1;
        self.stats.lifecycle = LifecycleState::Probing;
        Ok(())
    }

    #[cfg(test)]
    pub(crate) fn force_dead(&mut self) {
        self.declare_dead();
    }

    #[cfg(test)]
    pub(crate) fn force_backoff(&mut self) {
        self.note_nobufs();
    }

    #[cfg(test)]
    pub(crate) fn force_refused(&mut self) {
        self.note_refused();
    }

    #[cfg(test)]
    pub(crate) fn refused_score(&self) -> u32 {
        self.refused_score
    }

    /// Offer one frame to the kernel, assuming the local queue is empty
    /// (callers preserve FIFO by checking first).
    fn try_send(&mut self, frame: &[u8]) -> Result<(), TxError> {
        self.stats.send_syscalls += 1;
        match self.sock.send(frame) {
            Ok(_) => {
                self.stats.sent_frames += 1;
                self.stats.sent_bytes += frame.len() as u64;
                self.note_success();
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.enqueue(frame),
            Err(e) => match classify_error(&e) {
                SendFailure::Refused => {
                    if self.note_refused() {
                        // Transient: this datagram didn't go out (the
                        // send call was consumed reporting the echo) —
                        // park it for the next flush.
                        self.enqueue(frame)
                    } else {
                        Err(TxError::LinkDown)
                    }
                }
                SendFailure::NoBufs => {
                    self.note_nobufs();
                    self.enqueue(frame)
                }
                SendFailure::MsgSize => {
                    self.note_msgsize(frame.len());
                    Err(TxError::TooBig)
                }
                SendFailure::Fatal => {
                    self.note_fatal();
                    Err(TxError::LinkDown)
                }
            },
        }
    }
}

impl DatagramLink for UdpChannel {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
        if self.dead {
            return Err(TxError::LinkDown);
        }
        if frame.len() > self.mtu {
            return Err(TxError::TooBig);
        }
        self.flush();
        if self.dead {
            // The flush's own errors may have crossed the threshold.
            return Err(TxError::LinkDown);
        }
        if !self.queue.is_empty() {
            // Earlier frames are still parked: keep FIFO by joining them.
            return self.enqueue(frame);
        }
        self.try_send(frame)
    }

    fn send_frame_deferred(&mut self, frame: &[u8]) -> Result<(), TxError> {
        // Park behind anything already deferred — the caller's next
        // flush submits the whole accumulated burst as mmsg batches.
        // Copying here is fine: this path carries low-rate control
        // frames (markers), not the bulk data stream.
        if self.dead {
            return Err(TxError::LinkDown);
        }
        if frame.len() > self.mtu {
            return Err(TxError::TooBig);
        }
        self.enqueue(frame)
    }

    fn send_run(&mut self, frames: &[Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        // Eager batch: one backlog flush per run, then whole-run mmsg
        // submissions. Outcomes match per-frame send_frame calls.
        self.flush();
        out.reserve(frames.len());
        let n = frames.len();
        let mut i = 0;
        while i < n {
            if self.dead {
                out.push(Err(TxError::LinkDown));
                i += 1;
                continue;
            }
            if frames[i].len() > self.mtu {
                out.push(Err(TxError::TooBig));
                i += 1;
                continue;
            }
            if !self.queue.is_empty() {
                // Backpressured mid-run: keep FIFO by parking the rest.
                out.push(self.enqueue(&frames[i]));
                i += 1;
                continue;
            }
            // Maximal sub-run of sendable frames starting at i.
            let mut j = i + 1;
            while j < n && frames[j].len() <= self.mtu {
                j += 1;
            }
            let rep = self.io.send_frames(&self.sock, &frames[i..j]);
            self.stats.send_syscalls += rep.syscalls;
            for f in &frames[i..i + rep.sent] {
                self.stats.sent_frames += 1;
                self.stats.sent_bytes += f.len() as u64;
                out.push(Ok(()));
            }
            if rep.sent > 0 {
                self.note_success();
            }
            i += rep.sent;
            if i < j {
                if rep.hard_error {
                    match classify_errno(rep.errno) {
                        SendFailure::Refused => {
                            let r = if self.note_refused() {
                                self.enqueue(&frames[i])
                            } else {
                                Err(TxError::LinkDown)
                            };
                            out.push(r);
                        }
                        SendFailure::NoBufs => {
                            self.note_nobufs();
                            // Park this frame; the loop's queue check
                            // funnels the rest of the run behind it.
                            out.push(self.enqueue(&frames[i]));
                        }
                        SendFailure::MsgSize => {
                            self.note_msgsize(frames[i].len());
                            out.push(Err(TxError::TooBig));
                        }
                        SendFailure::Fatal => {
                            // This frame will never leave; subsequent
                            // frames retry the kernel, matching
                            // per-frame semantics.
                            self.note_fatal();
                            out.push(Err(TxError::LinkDown));
                        }
                    }
                    i += 1;
                } else {
                    // WouldBlock: park this frame; the loop's queue check
                    // funnels the rest of the run behind it.
                    out.push(self.enqueue(&frames[i]));
                    i += 1;
                }
            }
        }
    }

    fn send_run_owned(&mut self, frames: &mut [Vec<u8>], out: &mut Vec<Result<(), TxError>>) {
        // Deferred batch: take every frame's storage into the local
        // queue and let the caller's end-of-burst flush submit the whole
        // accumulated queue as mmsg batches. This is what keeps batch
        // occupancy at burst size rather than SRR run length.
        out.reserve(frames.len());
        for frame in frames.iter_mut() {
            let r = if self.dead {
                Err(TxError::LinkDown)
            } else if frame.len() > self.mtu {
                Err(TxError::TooBig)
            } else {
                self.enqueue_owned(frame)
            };
            out.push(r);
        }
    }

    fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
        // Must go through the GRO-aware splitter: on an offloaded socket
        // a raw recv would hand back a whole coalesced train as one blob.
        let (got, syscalls) = self.io.recv_one(&self.sock, buf);
        self.stats.recv_syscalls += syscalls;
        if let Some(n) = got {
            self.stats.recv_frames += 1;
            self.stats.recv_bytes += n as u64;
            self.note_alive();
        }
        got
    }

    fn recv_run(&mut self, bufs: &mut [Vec<u8>], lens: &mut [usize]) -> usize {
        let rep = self.io.recv_frames(&self.sock, bufs, lens);
        self.stats.recv_syscalls += rep.syscalls;
        self.stats.recv_frames += rep.received as u64;
        for &len in &lens[..rep.received] {
            self.stats.recv_bytes += len as u64;
        }
        if rep.received > 0 {
            self.note_alive();
        }
        rep.received
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn coalesce_hint(&self) -> bool {
        self.gso_offload()
    }

    fn flush(&mut self) -> usize {
        if self.dead {
            return 0;
        }
        if self.backoff_flushes > 0 {
            // ENOBUFS grace: give the kernel a few caller cycles to
            // drain transmit memory instead of re-hitting the syscall.
            self.backoff_flushes -= 1;
            return 0;
        }
        let mut drained = 0;
        loop {
            let (a, b) = self.queue.as_slices();
            let slice = if a.is_empty() { b } else { a };
            if slice.is_empty() {
                break;
            }
            let slice_len = slice.len();
            let rep = self.io.send_frames(&self.sock, slice);
            self.stats.send_syscalls += rep.syscalls;
            for _ in 0..rep.sent {
                let buf = self.queue.pop_front().expect("sent frames are queued");
                self.stats.sent_frames += 1;
                self.stats.sent_bytes += buf.len() as u64;
                self.recycle.push(buf);
                drained += 1;
            }
            if rep.sent > 0 {
                self.note_success();
            }
            if rep.hard_error {
                match classify_errno(rep.errno) {
                    SendFailure::Refused => {
                        // Transient: the head frame stays parked for the
                        // next flush (persistent refusal kills the
                        // channel and drains the queue via declare_dead).
                        self.note_refused();
                        break;
                    }
                    SendFailure::NoBufs => {
                        self.note_nobufs();
                        break;
                    }
                    SendFailure::MsgSize => {
                        // The head frame outgrew the path: it will never
                        // leave. Clamp, drop it, keep draining — the
                        // frames behind it may well fit.
                        let buf = self.queue.pop_front().expect("head frame exists");
                        self.note_msgsize(buf.len());
                        self.stats.dropped_error += 1;
                        self.recycle.push(buf);
                        continue;
                    }
                    SendFailure::Fatal => {
                        // The head frame will never leave; drop it
                        // rather than wedge the queue, then keep
                        // draining (unless the streak killed us).
                        let buf = self.queue.pop_front().expect("head frame exists");
                        self.note_fatal();
                        self.recycle.push(buf);
                        if self.dead {
                            break;
                        }
                        continue;
                    }
                }
            }
            if rep.sent < slice_len {
                break; // kernel backpressure: retry on the next flush
            }
        }
        drained
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn link_dead(&self) -> bool {
        self.dead
    }

    fn revive(&mut self) -> bool {
        self.revive_socket().is_ok()
    }

    fn tx_evidence(&self) -> Option<stripe_link::TxEvidence> {
        Some(stripe_link::TxEvidence {
            frames: self.stats.sent_frames,
            bytes: self.stats.sent_bytes,
            dropped: self.stats.dropped_queue + self.stats.dropped_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_moves_frames_both_ways() {
        let (mut a, mut b) = UdpChannel::pair(1500, 8).unwrap();
        a.send_frame(&[1, 2, 3]).unwrap();
        b.send_frame(&[9]).unwrap();
        let mut buf = [0u8; 1500];
        // Loopback delivery is immediate but poll to be safe.
        let n = recv_poll(&mut b, &mut buf).expect("frame a->b");
        assert_eq!(&buf[..n], &[1, 2, 3]);
        let n = recv_poll(&mut a, &mut buf).expect("frame b->a");
        assert_eq!(&buf[..n], &[9]);
        assert_eq!(a.stats().sent_frames, 1);
        assert_eq!(a.stats().recv_frames, 1);
    }

    #[test]
    fn frames_arrive_in_order_on_loopback() {
        let (mut a, mut b) = UdpChannel::pair(256, 8).unwrap();
        for i in 0..32u8 {
            a.send_frame(&[i]).unwrap();
        }
        let mut buf = [0u8; 256];
        for want in 0..32u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (1, want));
        }
    }

    #[test]
    fn oversized_frame_rejected_before_the_kernel() {
        let (mut a, _b) = UdpChannel::pair(16, 4).unwrap();
        assert_eq!(a.send_frame(&[0u8; 17]), Err(TxError::TooBig));
        assert_eq!(a.stats().sent_frames, 0);
    }

    #[test]
    fn send_run_outcomes_match_per_frame() {
        let (mut a, mut b) = UdpChannel::pair(64, 4).unwrap();
        let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert_eq!(out, vec![Ok(()), Ok(()), Ok(()), Ok(())]);
        let mut buf = [0u8; 64];
        for i in 0..4u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (8, i));
        }
    }

    #[test]
    fn send_run_batches_syscalls_when_mmsg_is_on() {
        let (mut a, _b) = UdpChannel::builder(64).batch(8).pair().unwrap();
        let frames: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert!(out.iter().all(|r| r.is_ok()));
        let s = a.stats();
        assert_eq!(s.sent_frames, 16);
        if a.gso_offload() {
            assert_eq!(s.send_syscalls, 1, "equal-size run rides one GSO send");
            assert_eq!(s.send_batch_occupancy(), 16.0);
        } else if a.batched_syscalls() {
            assert_eq!(s.send_syscalls, 2, "16 frames / batch 8 = 2 syscalls");
            assert_eq!(s.send_batch_occupancy(), 8.0);
        } else {
            assert_eq!(s.send_syscalls, 16);
        }
    }

    #[test]
    fn send_run_skips_oversized_mid_run() {
        let (mut a, mut b) = UdpChannel::pair(8, 4).unwrap();
        let frames: Vec<Vec<u8>> = vec![vec![1], vec![0; 9], vec![2]];
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert_eq!(out, vec![Ok(()), Err(TxError::TooBig), Ok(())]);
        let mut buf = [0u8; 8];
        for want in [1u8, 2] {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (1, want));
        }
    }

    #[test]
    fn send_run_owned_parks_until_flush() {
        let (mut a, mut b) = UdpChannel::pair(64, 8).unwrap();
        let mut frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run_owned(&mut frames, &mut out);
        assert_eq!(out, vec![Ok(()), Ok(()), Ok(()), Ok(())]);
        assert_eq!(a.backlog(), 4, "owned sends defer to flush");
        assert_eq!(a.stats().sent_frames, 0);
        assert_eq!(a.flush(), 4);
        let s = a.stats();
        assert_eq!(s.sent_frames, 4);
        if a.batched_syscalls() {
            assert_eq!(s.send_syscalls, 1, "whole backlog in one sendmmsg");
        }
        let mut buf = [0u8; 64];
        for i in 0..4u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (8, i));
        }
    }

    #[test]
    fn send_run_owned_respects_queue_bound() {
        let (mut a, _b) = UdpChannel::pair(64, 2).unwrap();
        let mut frames: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run_owned(&mut frames, &mut out);
        assert_eq!(out, vec![Ok(()), Ok(()), Err(TxError::QueueFull)]);
        assert_eq!(frames[2], vec![2; 8], "rejected frame left untouched");
        assert_eq!(a.stats().dropped_queue, 1);
    }

    #[test]
    fn recv_run_drains_in_batches() {
        let (mut a, mut b) = UdpChannel::builder(64).batch(4).pair().unwrap();
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 4]).collect();
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        let mut bufs: Vec<Vec<u8>> = (0..16).map(|_| vec![0u8; 64]).collect();
        let mut lens = [0usize; 16];
        let mut got = 0;
        for _ in 0..1000 {
            got += b.recv_run(bufs[got..].as_mut(), &mut lens[got..]);
            if got == 10 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(got, 10);
        for i in 0..10 {
            assert_eq!(lens[i], 4);
            assert_eq!(bufs[i][0], i as u8);
        }
        let s = b.stats();
        assert_eq!(s.recv_frames, 10);
        assert!(s.recv_syscalls > 0);
    }

    #[test]
    fn builder_reports_effective_kernel_buffers() {
        let (a, _b) = UdpChannel::builder(1500)
            .sndbuf(1 << 16)
            .rcvbuf(1 << 16)
            .pair()
            .unwrap();
        let s = a.stats();
        if crate::sys::mmsg_compiled() {
            assert!(s.sndbuf >= 1 << 16);
            assert!(s.rcvbuf >= 1 << 16);
        } else {
            assert_eq!((s.sndbuf, s.rcvbuf), (0, 0));
        }
        assert_eq!(a.stats().dropped_rcvbuf, 0, "unsampled");
    }

    #[test]
    fn forced_fallback_channel_still_delivers() {
        let (mut a, mut b) = UdpChannel::builder(64).force_fallback(true).pair().unwrap();
        assert!(!a.batched_syscalls());
        let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(a.stats().send_syscalls, 4, "per-frame syscalls");
        let mut buf = [0u8; 64];
        for i in 0..4u8 {
            let n = recv_poll(&mut b, &mut buf).expect("frame");
            assert_eq!((n, buf[0]), (8, i));
        }
    }

    #[test]
    fn refused_peer_ends_in_link_dead_never_a_panic() {
        let (mut a, b) = UdpChannel::pair(256, 64).unwrap();
        drop(b); // peer gone: sends start echoing ICMP port-unreachable
        for i in 0..10_000u32 {
            let _ = a.send_frame(&[i as u8; 32]);
            let _ = a.flush();
            if a.is_dead() {
                break;
            }
        }
        let s = a.stats();
        if s.transient_refused > 0 {
            // The ICMP echo reached us (Linux loopback): the decaying
            // score must have crossed the line and retired the channel.
            assert!(a.is_dead(), "persistent refusal must kill: {s:?}");
            assert!(a.link_dead());
            assert_eq!(a.send_frame(&[1, 2, 3]), Err(TxError::LinkDown));
            assert_eq!(a.backlog(), 0, "death drains the queue");
        }
    }

    #[test]
    fn emsgsize_clamps_mtu_and_reports_too_big() {
        // Claim an MTU beyond the 65,507-byte UDP maximum: the kernel
        // answers EMSGSIZE and the channel must adapt, not die.
        let (mut a, _b) = UdpChannel::builder(70_000).queue_cap(8).pair().unwrap();
        let huge = vec![0u8; 66_000];
        let r = a.send_frame(&huge);
        let s = a.stats();
        if s.mtu_clamps > 0 {
            assert_eq!(r, Err(TxError::TooBig));
            assert!(a.mtu() < 66_000, "mtu clamped under the refused frame");
            assert!(!a.is_dead(), "EMSGSIZE is recoverable, not fatal");
            assert!(!a.gso_offload(), "GSO demoted with the clamp");
            // Frames within the clamped MTU still flow.
            a.send_frame(&[7u8; 64]).unwrap();
            assert_eq!(a.stats().sent_frames, 1);
        }
    }

    #[test]
    fn enobufs_backoff_skips_flushes_then_resumes() {
        let (mut a, mut b) = UdpChannel::pair(256, 64).unwrap();
        a.send_frame_deferred(&[9u8; 16]).unwrap();
        a.force_backoff();
        for _ in 0..ENOBUFS_BACKOFF {
            assert_eq!(a.flush(), 0, "backoff must skip the syscall");
            assert_eq!(a.backlog(), 1);
        }
        assert_eq!(a.flush(), 1, "backoff expired: the frame goes out");
        let mut buf = [0u8; 256];
        assert_eq!(recv_poll(&mut b, &mut buf), Some(16));
        assert_eq!(a.stats().enobufs_backoffs, 1);
    }

    #[test]
    fn dead_channel_fails_fast_and_drains_its_queue() {
        let (mut a, _b) = UdpChannel::pair(256, 64).unwrap();
        a.send_frame_deferred(&[1u8; 8]).unwrap();
        a.send_frame_deferred(&[2u8; 8]).unwrap();
        assert_eq!(a.backlog(), 2);
        a.force_dead();
        assert!(a.is_dead() && a.link_dead());
        assert_eq!(a.backlog(), 0, "queued frames drained into recycle");
        assert_eq!(a.send_frame(&[3u8; 8]), Err(TxError::LinkDown));
        assert_eq!(a.send_frame_deferred(&[3u8; 8]), Err(TxError::LinkDown));
        let mut frames = vec![vec![4u8; 8]];
        let mut out = Vec::new();
        a.send_run(&frames, &mut out);
        assert_eq!(out, vec![Err(TxError::LinkDown)]);
        out.clear();
        a.send_run_owned(&mut frames, &mut out);
        assert_eq!(out, vec![Err(TxError::LinkDown)]);
        assert_eq!(frames[0], vec![4u8; 8], "storage left untouched");
        assert_eq!(a.flush(), 0);
        let s = a.stats();
        assert_eq!(s.dropped_error, 2, "both drained frames counted");
    }

    #[test]
    fn refusal_score_decays_on_inbound_not_on_sends() {
        let (mut a, mut b) = UdpChannel::pair(256, 64).unwrap();
        a.force_refused();
        a.force_refused();
        assert_eq!(a.refused_score(), 4);
        // Kernel-accepted sends prove nothing about the peer: no decay.
        // (ICMP refusal echoes are rate-limited, so under sustained
        // refusal accepted sends vastly outnumber observed errors —
        // letting them forgive the score would keep a dead channel
        // alive forever.)
        for i in 0..8u8 {
            a.send_frame(&[i; 16]).unwrap();
        }
        assert_eq!(a.refused_score(), 4);
        assert!(!a.is_dead());
        // Inbound traffic is proof of life: the score decays.
        b.send_frame(&[9u8; 16]).unwrap();
        let mut buf = [0u8; 256];
        assert!(recv_poll(&mut a, &mut buf).is_some());
        assert_eq!(a.refused_score(), 3);
    }

    #[test]
    fn revive_rebuilds_the_socket_on_the_same_port() {
        let (mut a, mut b) = UdpChannel::pair(256, 64).unwrap();
        let port = a.local_addr().unwrap().port();
        a.send_frame_deferred(&[1u8; 8]).unwrap();
        a.force_dead();
        assert!(a.link_dead());
        assert_eq!(a.stats().lifecycle, LifecycleState::Dead);

        assert!(a.revive(), "loopback rebind must succeed");
        assert!(!a.link_dead());
        assert_eq!(a.local_addr().unwrap().port(), port, "same 5-tuple");
        let s = a.stats();
        assert_eq!(s.lifecycle, LifecycleState::Probing);
        assert_eq!(s.generation, 1);
        assert_eq!(s.revive_attempts, 1);
        assert_eq!(s.rejoins, 0, "unproven until the peer is heard");

        // Traffic flows both ways on the rebuilt socket, and the first
        // inbound frame completes the revival.
        a.send_frame(&[7u8; 8]).unwrap();
        let mut buf = [0u8; 256];
        assert_eq!(recv_poll(&mut b, &mut buf), Some(8));
        b.send_frame(&[9u8; 8]).unwrap();
        assert_eq!(recv_poll(&mut a, &mut buf), Some(8));
        let s = a.stats();
        assert_eq!(s.lifecycle, LifecycleState::Live);
        assert_eq!(s.rejoins, 1);
    }

    #[test]
    fn revive_resets_generation_scoped_penalties() {
        let (mut a, _b) = UdpChannel::pair(2048, 64).unwrap();
        let base_gso = a.gso_offload();
        // Acquire every penalty the old socket can carry.
        a.force_refused();
        a.force_backoff();
        a.note_msgsize(1000); // clamps mtu to 999, demotes GSO
        assert_eq!(a.mtu(), 999);
        assert!(!a.gso_offload());
        a.force_dead();

        assert!(a.revive());
        assert_eq!(a.refused_score(), 0, "refusal score is per generation");
        assert_eq!(a.mtu(), 2048, "EMSGSIZE clamp is per generation");
        assert_eq!(
            a.gso_offload(),
            base_gso,
            "GSO demotion is per generation: the fresh socket re-probes"
        );
        // The backoff reset is observable through flush not skipping.
        a.send_frame_deferred(&[3u8; 16]).unwrap();
        assert_eq!(a.flush(), 1, "no inherited ENOBUFS backoff");
    }

    #[test]
    fn reviving_a_live_channel_is_a_noop() {
        let (mut a, _b) = UdpChannel::pair(256, 8).unwrap();
        assert!(a.revive());
        let s = a.stats();
        assert_eq!((s.generation, s.revive_attempts), (0, 0));
        assert_eq!(s.lifecycle, LifecycleState::Live);
    }

    #[test]
    fn from_spec_rebuilds_a_connected_channel() {
        let (a, mut b) = UdpChannel::pair(256, 8).unwrap();
        let spec = a.spec().clone();
        drop(a); // frees the local port for the rebuild
        let mut a2 = UdpChannel::from_spec(&spec, 3).unwrap();
        let s = a2.stats();
        assert_eq!(s.generation, 3);
        assert_eq!(s.lifecycle, LifecycleState::Probing);
        a2.send_frame(&[5u8; 8]).unwrap();
        let mut buf = [0u8; 256];
        assert_eq!(recv_poll(&mut b, &mut buf), Some(8), "peer still reachable");
    }

    /// Loopback UDP can reorder across *sockets* but a single connected
    /// socket pair is FIFO; receives may simply lag the send by a
    /// scheduling quantum, so tests poll briefly.
    fn recv_poll(ch: &mut UdpChannel, buf: &mut [u8]) -> Option<usize> {
        for _ in 0..1000 {
            if let Some(n) = ch.recv_frame(buf) {
                return Some(n);
            }
            std::thread::yield_now();
        }
        None
    }
}
