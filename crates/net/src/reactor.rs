//! The sender-side poll loop: flush backlogs, sweep the reverse path,
//! drive the failover control plane — no async runtime, no threads.
//!
//! The whole subsystem runs on non-blocking sockets, so somebody has to
//! come back around: retry frames the kernel refused, read probe acks
//! and membership acks off the reverse path, and hand the PR-1
//! [`FailoverDriver`] its periodic tick. [`SenderReactor`] is that
//! somebody. One [`poll`](SenderReactor::poll) is one readiness sweep;
//! the application calls it between send batches (or from a trivial
//! loop when idle). Because every timer-driven component takes `now` as
//! an argument instead of asking a clock, the same reactor code runs
//! under [`WallClock`](crate::clock::WallClock) time in production and
//! under scripted [`SimTime`]s in tests.
//!
//! Since the lifecycle work the reactor is also the recovery
//! *orchestrator*: each channel carries a
//! [`ChannelLifecycle`](crate::lifecycle::ChannelLifecycle) machine, and
//! every poll feeds it death evidence (link flags, liveness verdicts),
//! executes its one side effect (cooldown elapsed →
//! [`DatagramLink::revive`]), and watches the failover driver for the
//! probe ack and membership-grow completion that walk the channel back
//! to live. The driver still owns *what* to announce; the lifecycle
//! owns *when to rebuild sockets* and how hard to back off.
//!
//! [`FailoverDriver`]: stripe_transport::FailoverDriver

use std::marker::PhantomData;

use stripe_core::control::Control;
use stripe_core::liveness::ChannelHealth;
use stripe_core::sched::CausalScheduler;
use stripe_core::types::ChannelId;
use stripe_link::DatagramLink;
use stripe_netsim::{SimDuration, SimTime};
use stripe_transport::{ControlPath, ControlTransmission, FailoverDriver};

use crate::adapt::{AdaptiveStep, AdaptiveTuner};
use crate::frame::{self, Frame};
use crate::lifecycle::{ChannelLifecycle, LifecycleAction, LifecycleConfig, LifecycleState};
use crate::path::NetStripedPath;
use crate::server::StripeServer;

/// What the reactor needs from a datapath, beyond the control-plane
/// surface it already presents as a [`ControlPath`]: direct access to
/// the member links (to sweep the reverse path and execute lifecycle
/// rebinds) and a backlog flush.
///
/// Both [`NetStripedPath`] (one flow) and [`StripeServer`] (many flows
/// over the same channel set) implement it, so one reactor — sweep,
/// death evidence, probe/rejoin lifecycle, failover tick — serves both.
/// Failover and channel lifecycle thereby stay flow-agnostic: they see
/// channels, never flows.
pub trait ReactorPath<L: DatagramLink>: ControlPath {
    /// The member links, indexed by channel id.
    fn reactor_links(&self) -> &[L];
    /// Mutable access to the member links.
    fn reactor_links_mut(&mut self) -> &mut [L];
    /// Retry parked frames toward the kernel; returns frames drained.
    fn flush_backlog(&mut self) -> usize;
    /// Flush every flow's sender-side engine state — schedulers,
    /// accountants, marker cadence, queued-but-unsent packets — after a
    /// completed §5 reset. The receiver flushed its half when it acked;
    /// both ends restart the simulation from the same zero.
    fn reset_flows(&mut self);
}

impl<S: CausalScheduler, L: DatagramLink> ReactorPath<L> for NetStripedPath<S, L> {
    fn reactor_links(&self) -> &[L] {
        self.links()
    }
    fn reactor_links_mut(&mut self) -> &mut [L] {
        self.links_mut()
    }
    fn flush_backlog(&mut self) -> usize {
        self.flush()
    }
    fn reset_flows(&mut self) {
        self.reset_engine();
    }
}

impl<S: CausalScheduler, L: DatagramLink> ReactorPath<L> for StripeServer<S, L> {
    fn reactor_links(&self) -> &[L] {
        self.links()
    }
    fn reactor_links_mut(&mut self) -> &mut [L] {
        self.links_mut()
    }
    fn flush_backlog(&mut self) -> usize {
        self.flush()
    }
    fn reset_flows(&mut self) {
        self.reset_flows();
    }
}

/// A fixed-interval timer in simulation/wall time.
///
/// `fire(now)` answers "has the interval elapsed?" and, when it has,
/// re-arms past `now` — skipping missed intervals rather than bursting,
/// since a late reactor wants one tick, not a backlog of them.
#[derive(Debug, Clone, Copy)]
pub struct Periodic {
    next: SimTime,
    interval: SimDuration,
}

impl Periodic {
    /// A timer first firing at `start + interval`, then every `interval`.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        Self {
            next: start + interval,
            interval,
        }
    }

    /// True when the timer is due at `now`; re-arms for the next interval
    /// strictly after `now`.
    pub fn fire(&mut self, now: SimTime) -> bool {
        if now < self.next {
            return false;
        }
        while self.next <= now {
            self.next += self.interval;
        }
        true
    }

    /// The next due time.
    pub fn next_due(&self) -> SimTime {
        self.next
    }
}

/// Counters for the reactor's own work (the datapath and control plane
/// keep their own snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// Readiness sweeps performed.
    pub polls: u64,
    /// Backlogged frames drained to the kernel by flushes.
    pub flushed: u64,
    /// Control frames read off the reverse path.
    pub control_in: u64,
    /// Data frames read off the reverse path (unexpected at the sender)
    /// and discarded.
    pub dropped_unexpected_data: u64,
    /// Reverse-path frames that failed to decode.
    pub dropped_malformed: u64,
    /// Failover ticks delivered.
    pub ticks: u64,
    /// Channels the link layer reported dead (socket hard errors, worker
    /// panics) that the failover driver newly declared dead.
    pub link_dead_reports: u64,
    /// Channels observed recovering (first probe ack on a dead channel),
    /// i.e. membership *grow* announcements begun by the driver.
    pub grow_announcements: u64,
    /// Completed die→rejoin cycles: channels walked all the way back to
    /// live through the grow handshake.
    pub rejoins: u64,
    /// Adaptive retune announcements flooded (see [`AdaptiveTuner`]).
    pub retunes: u64,
    /// Quantum acks fed back into the adaptive handshake.
    pub retune_acks: u64,
    /// Retune handshakes fully acked.
    pub retunes_complete: u64,
    /// Is the datapath currently parked (total blackout, or a §5 reset
    /// awaiting acks)? Data sends fail fast; control keeps flowing.
    pub parked: bool,
    /// Transitions into total blackout (every channel dead at once).
    pub blackouts: u64,
    /// Nanoseconds spent parked, accumulated over completed parks.
    pub park_ns: u64,
    /// Peer restarts detected via incarnation changes in probe acks.
    pub restarts_detected: u64,
    /// §5 resets initiated by the failover driver.
    pub resets_started: u64,
    /// §5 resets fully acknowledged and flushed on both ends.
    pub resets_completed: u64,
    /// Receiver desync alerts read off the reverse path.
    pub desync_alerts: u64,
}

/// Whether any control transmission in a poll's report carries a
/// membership announcement — the signal the integration suites (and the
/// reactor's own tests) watch for a shrink or grow hitting the wire.
/// One shared definition so "did failover announce?" means the same
/// thing everywhere.
pub fn membership_announced(reports: &[ControlTransmission]) -> bool {
    reports
        .iter()
        .any(|r| matches!(r.ctl, Control::Membership { .. }))
}

/// Poll-driven harness around any [`ReactorPath`] datapath and its
/// failover control plane.
#[derive(Debug)]
pub struct PathReactor<P, L> {
    path: P,
    driver: Option<FailoverDriver>,
    tick: Periodic,
    /// Scratch buffers for batched reverse-path receives. The reverse
    /// path carries only low-rate control traffic, so a small batch is
    /// plenty.
    recv_bufs: Vec<Vec<u8>>,
    recv_lens: Vec<usize>,
    /// One recovery state machine per channel (see [`crate::lifecycle`]).
    lifecycle: Vec<ChannelLifecycle>,
    /// The adaptive quantum control loop, when attached (see
    /// [`attach_adaptive`](Self::attach_adaptive)).
    adaptive: Option<AdaptiveTuner>,
    /// When the current park began (blackout or reset), if one is open.
    park_since_ns: Option<u64>,
    /// Edge detector for blackout transitions.
    was_blackout: bool,
    stats: ReactorSnapshot,
    _link: PhantomData<fn() -> L>,
}

/// The single-flow reactor: a [`PathReactor`] over [`NetStripedPath`].
pub type SenderReactor<S, L> = PathReactor<NetStripedPath<S, L>, L>;

/// The multi-flow reactor: a [`PathReactor`] over [`StripeServer`].
pub type ServerReactor<S, L> = PathReactor<StripeServer<S, L>, L>;

/// Reverse-path receive batch width.
const REVERSE_RUN: usize = 8;

impl<P: ReactorPath<L>, L: DatagramLink> PathReactor<P, L> {
    /// Wrap `path`, ticking `driver` (when present) every
    /// `tick_interval` starting from `now`.
    pub fn new(
        path: P,
        driver: Option<FailoverDriver>,
        now: SimTime,
        tick_interval: SimDuration,
    ) -> Self {
        let buf_len = path
            .reactor_links()
            .iter()
            .map(|l| l.mtu())
            .max()
            .expect("path has at least one link");
        // The recovery rhythm follows the probe rhythm: cooldowns and
        // probe patience are multiples of the driver's probe interval
        // (see [`LifecycleConfig::with_probe_interval`]).
        let lifecycle_cfg = driver
            .as_ref()
            .map(|d| LifecycleConfig::with_probe_interval(d.liveness().config().probe_interval_ns))
            .unwrap_or_default();
        let channels = path.reactor_links().len();
        Self {
            path,
            driver,
            tick: Periodic::new(now, tick_interval),
            recv_bufs: (0..REVERSE_RUN).map(|_| vec![0u8; buf_len]).collect(),
            recv_lens: vec![0; REVERSE_RUN],
            lifecycle: (0..channels)
                .map(|_| ChannelLifecycle::new(lifecycle_cfg))
                .collect(),
            adaptive: None,
            park_since_ns: None,
            was_blackout: false,
            stats: ReactorSnapshot::default(),
            _link: PhantomData,
        }
    }

    /// Attach the adaptive quantum control loop: from the next poll on,
    /// every channel's transmit evidence and probe round trips feed its
    /// estimators, and estimation ticks may flood epoch'd retunes (see
    /// [`crate::adapt`]). The tuner's initial quanta must match the
    /// scheduler's, or the deadband measures against the wrong baseline.
    pub fn attach_adaptive(&mut self, tuner: AdaptiveTuner) {
        assert_eq!(
            tuner.quanta().len(),
            self.path.reactor_links().len(),
            "one quantum per channel"
        );
        self.adaptive = Some(tuner);
    }

    /// The adaptive control loop, if attached.
    pub fn adaptive(&self) -> Option<&AdaptiveTuner> {
        self.adaptive.as_ref()
    }

    /// Replace the recovery timing policy (resets every channel's
    /// machine to live — call before inducing chaos, not during).
    pub fn set_lifecycle_config(&mut self, cfg: LifecycleConfig) {
        for lc in &mut self.lifecycle {
            *lc = ChannelLifecycle::new(cfg);
        }
    }

    /// Per-channel recovery machines (state + counters).
    pub fn lifecycle(&self) -> &[ChannelLifecycle] {
        &self.lifecycle
    }

    /// One readiness sweep at `now`:
    ///
    /// 1. flush every channel's parked send backlog toward the kernel;
    /// 2. surface link-layer death reports (socket hard errors, worker
    ///    panics) to the failover driver, short-circuiting the keepalive
    ///    deadline;
    /// 3. drain the reverse path, feeding control to the failover driver;
    /// 4. step each channel's recovery lifecycle — cooldowns, socket
    ///    rebuilds ([`DatagramLink::revive`]), and the probe/rejoin
    ///    watches;
    /// 5. deliver the periodic failover tick when due.
    ///
    /// Returns the control transmissions the driver reported (probes
    /// sent, announcements, retransmissions) — empty in the steady state,
    /// and `Vec::new()` never allocates.
    pub fn poll(&mut self, now: SimTime) -> Vec<ControlTransmission> {
        self.stats.polls += 1;
        self.stats.flushed += self.path.flush_backlog() as u64;
        let mut reports = Vec::new();
        for c in 0..self.path.reactor_links().len() {
            self.report_link_death(c, now, &mut reports);
            loop {
                let got = self.path.reactor_links_mut()[c]
                    .recv_run(&mut self.recv_bufs, &mut self.recv_lens);
                for i in 0..got {
                    let n = self.recv_lens[i];
                    let ctl = match frame::decode(&self.recv_bufs[i][..n]) {
                        Some(Frame::Control(ctl)) => {
                            self.stats.control_in += 1;
                            ctl
                        }
                        Some(Frame::Data(_)) => {
                            self.stats.dropped_unexpected_data += 1;
                            continue;
                        }
                        None => {
                            self.stats.dropped_malformed += 1;
                            continue;
                        }
                    };
                    if let Control::DesyncAlert { .. } = ctl {
                        self.stats.desync_alerts += 1;
                    }
                    if let Some(ad) = self.adaptive.as_mut() {
                        match &ctl {
                            Control::ProbeAck { nonce, .. } => {
                                ad.on_probe_ack(c, *nonce, now.as_nanos());
                            }
                            Control::QuantumAck { epoch } => {
                                // The failover driver ignores quantum
                                // acks; the adaptive handshake owns them.
                                let before = ad.stats();
                                ad.on_quantum_ack(c, *epoch);
                                let after = ad.stats();
                                self.stats.retune_acks += after.retune_acks - before.retune_acks;
                                self.stats.retunes_complete +=
                                    after.retunes_complete - before.retunes_complete;
                            }
                            _ => {}
                        }
                    }
                    if let Some(driver) = self.driver.as_mut() {
                        reports.extend(driver.on_control(&mut self.path, c, &ctl, now));
                    }
                }
                if got < REVERSE_RUN {
                    break;
                }
            }
            // After the reverse sweep, so a probe ack read this very
            // poll advances the machine this very poll.
            self.step_lifecycle(c, now);
            // Sample the channel's cumulative transmit evidence into its
            // estimator (links without evidence keep the loop unprimed).
            if let Some(ad) = self.adaptive.as_mut() {
                if let Some(ev) = self.path.reactor_links()[c].tx_evidence() {
                    ad.on_tx_evidence(c, now.as_nanos(), ev);
                }
            }
        }
        if self.tick.fire(now) {
            if let Some(driver) = self.driver.as_mut() {
                self.stats.ticks += 1;
                reports.extend(driver.tick(&mut self.path, now));
            }
        }
        if let Some(driver) = self.driver.as_mut() {
            // A completed §5 reset: the receiver has flushed and acked,
            // so flush the sender-side engines and re-announce to
            // unpark — both ends restart the simulation from zero.
            if driver.take_pending_engine_reset() {
                self.path.reset_flows();
                reports.extend(driver.reannounce(&mut self.path, now));
            }
            let (parked, blackout) = (driver.parked(), driver.blackout());
            self.stats.restarts_detected = driver.restarts_detected();
            self.stats.resets_started = driver.resets_started();
            self.stats.resets_completed = driver.resets_completed();
            self.observe_park(parked, blackout, now);
        }
        self.step_adaptive(now, &mut reports);
        reports
    }

    /// Track park state for the snapshot: blackout rising edges count as
    /// blackouts, and completed parks accumulate their duration.
    fn observe_park(&mut self, parked: bool, blackout: bool, now: SimTime) {
        if blackout && !self.was_blackout {
            self.stats.blackouts += 1;
        }
        self.was_blackout = blackout;
        match (parked, self.park_since_ns) {
            (true, None) => self.park_since_ns = Some(now.as_nanos()),
            (false, Some(since)) => {
                self.stats.park_ns += now.as_nanos().saturating_sub(since);
                self.park_since_ns = None;
            }
            _ => {}
        }
        self.stats.parked = parked;
    }

    /// Drive the adaptive quantum loop one step: record probes the
    /// driver just sent (their acks become RTT samples), and execute a
    /// due announce or retransmission. A retune is announced exactly
    /// like a membership change — scheduled on the local path at an
    /// effective round a little ahead of the scan, then flooded over
    /// the live channels and retransmitted until every ack is in.
    fn step_adaptive(&mut self, now: SimTime, reports: &mut Vec<ControlTransmission>) {
        let Some(ad) = self.adaptive.as_mut() else {
            return;
        };
        for r in reports.iter() {
            if let Control::Probe { nonce } = r.ctl {
                if r.error.is_none() {
                    ad.on_probe_sent(r.channel, nonce, now.as_nanos());
                }
            }
        }
        match ad.step(now) {
            AdaptiveStep::Idle => {}
            AdaptiveStep::Announce => {
                let live = match self.driver.as_ref() {
                    Some(d) => d.liveness().live_mask(),
                    None => vec![true; self.path.reactor_links().len()],
                };
                if !live.iter().any(|&l| l) {
                    return; // total outage: nothing can carry the retune
                }
                let eff = self.path.current_round() + ad.announce_lead_rounds();
                let msg = ad.begin_announce(eff, &live, now);
                let Control::QuantumAnnounce { ref quanta, .. } = msg else {
                    unreachable!("begin_announce builds a QuantumAnnounce");
                };
                self.path.schedule_quanta(eff, quanta);
                self.stats.retunes += 1;
                for (c, &is_live) in live.iter().enumerate() {
                    if is_live {
                        reports.push(self.path.transmit_control_ref(now, c, &msg));
                    }
                }
            }
            AdaptiveStep::Retransmit => {
                let Some(msg) = ad.retransmission(now) else {
                    return;
                };
                let awaiting: Vec<ChannelId> = ad.awaiting_channels().collect();
                for c in awaiting {
                    reports.push(self.path.transmit_control_ref(now, c, &msg));
                }
            }
        }
    }

    /// The one dead-channel handling path: surface a link-layer death
    /// flag to the failover driver (a *newly* declared death announces
    /// the shrunken mask immediately, counted in `link_dead_reports`;
    /// repeats are idempotent) and feed the evidence to the channel's
    /// lifecycle machine.
    fn report_link_death(
        &mut self,
        c: usize,
        now: SimTime,
        reports: &mut Vec<ControlTransmission>,
    ) {
        if !self.path.reactor_links()[c].link_dead() {
            return;
        }
        if let Some(driver) = self.driver.as_mut() {
            let before = driver.liveness().deaths();
            reports.extend(driver.on_link_dead(&mut self.path, c, now));
            if driver.liveness().deaths() > before {
                self.stats.link_dead_reports += 1;
            }
        }
        self.lifecycle[c].on_dead(now.as_nanos());
    }

    /// Walk channel `c`'s recovery machine one step: pick up
    /// silence-deaths the liveness tracker declared, execute a due
    /// rebind through [`DatagramLink::revive`], and translate the
    /// driver's observations (probe ack → recovery → grow announced;
    /// grow fully acked → rejoin complete) into lifecycle transitions.
    fn step_lifecycle(&mut self, c: usize, now: SimTime) {
        let now_ns = now.as_nanos();
        // Silence-death: the socket is fine but the liveness deadline
        // passed (e.g. a partition). The link-flag path already fed
        // `on_dead` in `report_link_death`.
        if let Some(driver) = self.driver.as_ref() {
            if driver.liveness().health(c) == ChannelHealth::Dead {
                self.lifecycle[c].on_dead(now_ns);
            }
        }
        if self.lifecycle[c].advance(now_ns) == LifecycleAction::Rebind {
            if self.path.reactor_links_mut()[c].revive() {
                self.lifecycle[c].rebind_ok(now_ns);
            } else {
                self.lifecycle[c].rebind_failed(now_ns);
            }
        }
        let Some(driver) = self.driver.as_ref() else {
            return;
        };
        let lc = &mut self.lifecycle[c];
        // Recovery: the driver heard the first probe ack (liveness back
        // to Live) and has begun the epoch'd membership grow.
        let dead_side = matches!(
            lc.state(),
            LifecycleState::Dead | LifecycleState::Cooldown | LifecycleState::Probing
        );
        if dead_side
            && driver.liveness().health(c) == ChannelHealth::Live
            && !self.path.reactor_links()[c].link_dead()
        {
            lc.on_recovered(now_ns);
            self.stats.grow_announcements += 1;
        }
        // Rejoin completion: the grow announcement is fully acked (or
        // was superseded) — nothing is awaiting, the cycle closes.
        if lc.state() == LifecycleState::Rejoining && !driver.membership().in_progress() {
            lc.on_rejoin_complete(now_ns);
            self.stats.rejoins += 1;
        }
    }

    /// The wrapped path.
    pub fn path(&self) -> &P {
        &self.path
    }

    /// Mutable access to the wrapped path (to send batches through).
    pub fn path_mut(&mut self) -> &mut P {
        &mut self.path
    }

    /// The failover driver, if one is attached.
    pub fn driver(&self) -> Option<&FailoverDriver> {
        self.driver.as_ref()
    }

    /// Reactor counters.
    pub fn stats(&self) -> ReactorSnapshot {
        self.stats
    }

    /// Take the path (and driver) back out.
    pub fn into_inner(self) -> (P, Option<FailoverDriver>) {
        (self.path, self.driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recv::NetLogicalReceiver;
    use stripe_core::control::Control;
    use stripe_core::sched::Srr;
    use stripe_link::{datagram_pair, TestDatagramLink};
    use stripe_transport::FailoverConfig;

    fn reactor_pair(
        tick_ns: u64,
    ) -> (
        SenderReactor<Srr, TestDatagramLink>,
        NetLogicalReceiver<Srr, TestDatagramLink>,
    ) {
        let (a0, b0) = datagram_pair(2048, 4096);
        let (a1, b1) = datagram_pair(2048, 4096);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .build();
        let driver = FailoverDriver::new(
            2,
            FailoverConfig::with_probe_interval(tick_ns),
            SimTime::ZERO,
        );
        let reactor = SenderReactor::new(
            path,
            Some(driver),
            SimTime::ZERO,
            SimDuration::from_nanos(tick_ns),
        );
        let rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![b0, b1])
            .build();
        (reactor, rx)
    }

    #[test]
    fn periodic_fires_once_per_interval_and_skips_missed() {
        let mut p = Periodic::new(SimTime::ZERO, SimDuration::from_millis(10));
        assert!(!p.fire(SimTime::from_millis(9)));
        assert!(p.fire(SimTime::from_millis(10)));
        assert!(!p.fire(SimTime::from_millis(11)));
        // Late by many intervals: one fire, re-armed past now.
        assert!(p.fire(SimTime::from_millis(55)));
        assert_eq!(p.next_due(), SimTime::from_millis(60));
    }

    /// A full probe round trip through real frame bytes: tick emits
    /// probes, the receiver acks them on the reverse path, the next
    /// reactor poll feeds the acks back into the liveness tracker.
    #[test]
    fn probe_round_trip_keeps_channels_live() {
        let (mut reactor, mut rx) = reactor_pair(1_000_000);
        // Walk time far past the dead deadline, polling both ends each
        // probe interval; acked channels must never be declared dead.
        let mut announced_death = false;
        for ms in 1..20u64 {
            let now = SimTime::from_millis(ms);
            let reports = reactor.poll(now);
            announced_death |= membership_announced(&reports);
            rx.sweep(now);
            reactor.poll(now); // read back this interval's acks
        }
        assert!(reactor.stats().ticks >= 19);
        assert!(reactor.stats().control_in >= 2, "acks flowed back");
        assert!(!announced_death, "acked channels must stay live");
        assert_eq!(rx.net_stats().replies_sent, rx.net_stats().control_frames);
    }

    /// One channel acked, one silent: three silent intervals kill the
    /// quiet channel and a shrunken mask is announced on the live one.
    #[test]
    fn silence_declares_death() {
        let (a0, mut b0) = datagram_pair(2048, 4096);
        let (a1, _silent_peer) = datagram_pair(2048, 4096);
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(vec![a0, a1])
            .build();
        let driver = FailoverDriver::new(
            2,
            FailoverConfig::with_probe_interval(1_000_000),
            SimTime::ZERO,
        );
        let mut reactor = SenderReactor::new(
            path,
            Some(driver),
            SimTime::ZERO,
            SimDuration::from_millis(1),
        );
        let mut buf = [0u8; 2048];
        let mut ctl_buf = Vec::new();
        let mut announced_death = false;
        for ms in 1..10u64 {
            let reports = reactor.poll(SimTime::from_millis(ms));
            announced_death |= membership_announced(&reports);
            // Ack channel 0's probes by hand; channel 1 stays silent.
            while let Some(n) = b0.recv_frame(&mut buf) {
                if let Some(Frame::Control(Control::Probe { nonce })) = frame::decode(&buf[..n]) {
                    crate::frame::encode_control_into(
                        &Control::ProbeAck {
                            nonce,
                            incarnation: 1,
                        },
                        &mut ctl_buf,
                    );
                    b0.send_frame(&ctl_buf).unwrap();
                }
            }
        }
        assert!(
            announced_death,
            "a dead channel must announce a shrunken mask"
        );
    }

    /// A link reporting itself dead: the very next poll announces the
    /// shrunken mask — no keepalive deadline, no probes required.
    #[test]
    fn link_dead_report_triggers_immediate_failover() {
        use stripe_link::TxError;

        /// Test link whose deadness can be flipped from outside.
        #[derive(Debug)]
        struct MortalLink {
            inner: TestDatagramLink,
            dead: bool,
        }
        impl DatagramLink for MortalLink {
            fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
                if self.dead {
                    return Err(TxError::LinkDown);
                }
                self.inner.send_frame(frame)
            }
            fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
                self.inner.recv_frame(buf)
            }
            fn mtu(&self) -> usize {
                self.inner.mtu()
            }
            fn link_dead(&self) -> bool {
                self.dead
            }
        }

        let (a0, _b0) = datagram_pair(2048, 4096);
        let (a1, _b1) = datagram_pair(2048, 4096);
        let links = vec![
            MortalLink {
                inner: a0,
                dead: false,
            },
            MortalLink {
                inner: a1,
                dead: false,
            },
        ];
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(links)
            .build();
        let driver = FailoverDriver::new(
            2,
            FailoverConfig::with_probe_interval(1_000_000),
            SimTime::ZERO,
        );
        let mut reactor = SenderReactor::new(
            path,
            Some(driver),
            SimTime::ZERO,
            SimDuration::from_millis(1),
        );

        // Healthy sweep: no death reported.
        reactor.poll(SimTime::from_micros(100));
        assert_eq!(reactor.stats().link_dead_reports, 0);

        // Kill channel 1 at the link layer; the next poll must announce.
        reactor.path_mut().links_mut()[1].dead = true;
        let reports = reactor.poll(SimTime::from_micros(200));
        assert!(
            membership_announced(&reports),
            "death evidence must announce a shrunken mask immediately"
        );
        let driver = reactor.driver().expect("driver attached");
        assert_eq!(driver.liveness().deaths(), 1);
        assert_eq!(driver.liveness().live_mask(), vec![true, false]);
        assert_eq!(reactor.stats().link_dead_reports, 1);
        assert_eq!(
            reactor.lifecycle()[1].state(),
            LifecycleState::Cooldown,
            "death is a lifecycle transition now, not a terminal state"
        );

        // Still-dead link on later polls: idempotent, no re-announce spam.
        let again = reactor.poll(SimTime::from_micros(300));
        assert!(
            !membership_announced(&again),
            "no duplicate announcements while the link stays dead"
        );
        assert_eq!(reactor.stats().link_dead_reports, 1);
    }

    /// The full recovery arc over in-memory links: a link dies, the
    /// lifecycle waits out the cooldown, revives it, the probe ack
    /// triggers the epoch'd grow, the grow acks complete the rejoin —
    /// and the reactor's counters narrate every step.
    #[test]
    fn revived_link_walks_back_to_live() {
        use stripe_link::TxError;

        /// Link that can die and be revived from outside.
        #[derive(Debug)]
        struct PhoenixLink {
            inner: TestDatagramLink,
            dead: bool,
        }
        impl DatagramLink for PhoenixLink {
            fn send_frame(&mut self, frame: &[u8]) -> Result<(), TxError> {
                if self.dead {
                    return Err(TxError::LinkDown);
                }
                self.inner.send_frame(frame)
            }
            fn recv_frame(&mut self, buf: &mut [u8]) -> Option<usize> {
                if self.dead {
                    return None;
                }
                self.inner.recv_frame(buf)
            }
            fn mtu(&self) -> usize {
                self.inner.mtu()
            }
            fn link_dead(&self) -> bool {
                self.dead
            }
            fn revive(&mut self) -> bool {
                self.dead = false;
                true
            }
        }

        let (a0, mut b0) = datagram_pair(2048, 4096);
        let (a1, mut b1) = datagram_pair(2048, 4096);
        let links = vec![
            PhoenixLink {
                inner: a0,
                dead: false,
            },
            PhoenixLink {
                inner: a1,
                dead: false,
            },
        ];
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(2, 1500))
            .links(links)
            .build();
        let driver = FailoverDriver::new(
            2,
            FailoverConfig::with_probe_interval(1_000_000),
            SimTime::ZERO,
        );
        let mut reactor = SenderReactor::new(
            path,
            Some(driver),
            SimTime::ZERO,
            SimDuration::from_millis(1),
        );

        // Kill channel 1 at the link layer; the shrink announces.
        reactor.path_mut().links_mut()[1].dead = true;
        assert!(membership_announced(
            &reactor.poll(SimTime::from_micros(100))
        ));
        assert_eq!(reactor.lifecycle()[1].state(), LifecycleState::Cooldown);

        // Drive time forward, answering every probe and acking every
        // membership announcement on both peers by hand.
        let mut buf = [0u8; 2048];
        let mut ctl_buf = Vec::new();
        let mut grow_announced = false;
        for step in 2..120u64 {
            let now = SimTime::from_micros(step * 500);
            let reports = reactor.poll(now);
            if reactor.stats().grow_announcements > 0 {
                grow_announced |= membership_announced(&reports);
            }
            for b in [&mut b0, &mut b1] {
                while let Some(n) = b.recv_frame(&mut buf) {
                    let reply = match frame::decode(&buf[..n]) {
                        Some(Frame::Control(Control::Probe { nonce })) => Some(Control::ProbeAck {
                            nonce,
                            incarnation: 1,
                        }),
                        Some(Frame::Control(Control::Membership { epoch, .. })) => {
                            Some(Control::MembershipAck { epoch })
                        }
                        _ => None,
                    };
                    if let Some(ctl) = reply {
                        crate::frame::encode_control_into(&ctl, &mut ctl_buf);
                        let _ = b.send_frame(&ctl_buf);
                    }
                }
            }
            if reactor.lifecycle()[1].state() == LifecycleState::Live && reactor.stats().rejoins > 0
            {
                break;
            }
        }

        let stats = reactor.stats();
        assert_eq!(stats.link_dead_reports, 1);
        assert_eq!(stats.grow_announcements, 1, "one recovery, one grow");
        assert_eq!(stats.rejoins, 1, "the cycle closed");
        let driver = reactor.driver().expect("driver attached");
        assert_eq!(
            driver.liveness().live_mask(),
            vec![true, true],
            "full capacity restored"
        );
        assert!(!driver.membership().in_progress(), "grow fully acked");
        assert!(!reactor.path().links()[1].link_dead(), "link was revived");
        let snap = reactor.lifecycle()[1].snapshot();
        assert_eq!(snap.state, LifecycleState::Live);
        assert_eq!(snap.rejoins, 1);
        assert!(snap.rebind_attempts >= 1, "revive went through the link");
        assert!(grow_announced, "the grow rode the wire as a Membership");
    }

    /// The full adaptive arc over shaped in-memory links: token buckets
    /// cap the three channels 4:2:1, the estimators learn the split from
    /// transmit evidence, the tuner floods an epoch'd retune, the
    /// receiver acks and applies it — and delivery stays quasi-FIFO
    /// across the switch.
    #[test]
    fn adaptive_retune_round_trip_over_shaped_links() {
        use crate::adapt::{AdaptiveConfig, AdaptiveTuner};
        use crate::chaos::{ChaosPlan, ImpairedLink};

        let rates = [4000u64, 2000, 1000];
        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for (i, &r) in rates.iter().enumerate() {
            let (a, b) = datagram_pair(2048, 1 << 12);
            let plan = ChaosPlan::default().shape(r, 2 * r);
            fwd.push(ImpairedLink::new(a, plan, 0xAD0 + i as u64));
            rev.push(b);
        }
        let path = NetStripedPath::builder()
            .scheduler(Srr::equal(3, 1500))
            .markers(stripe_core::sender::MarkerConfig::every_rounds(4))
            .links(fwd)
            .build();
        let mut reactor = PathReactor::new(path, None, SimTime::ZERO, SimDuration::from_millis(1));
        let cfg = AdaptiveConfig::with_interval(SimDuration::from_millis(5));
        reactor.attach_adaptive(AdaptiveTuner::new(&[1500, 1500, 1500], cfg, SimTime::ZERO));
        let mut rx = NetLogicalReceiver::builder()
            .scheduler(Srr::equal(3, 1500))
            .links(rev)
            .build();

        let mut out = stripe_transport::TxBatch::new();
        let mut batch = stripe_core::receiver::RxBatch::new();
        let mut seq = 0u64;
        let mut delivered = Vec::new();
        for ms in 1..=120u64 {
            let now = SimTime::from_millis(ms);
            // Saturating offered load: well past aggregate capacity, so
            // every channel's policer binds and carried load IS capacity.
            let mut pkts: Vec<bytes::Bytes> = (0..48)
                .map(|_| {
                    let mut p = vec![0u8; 500];
                    p[..8].copy_from_slice(&seq.to_be_bytes());
                    seq += 1;
                    bytes::Bytes::from(p)
                })
                .collect();
            reactor.path_mut().send_batch(now, &mut pkts, &mut out);
            reactor.poll(now);
            rx.sweep(now);
            rx.poll_into(&mut batch);
            for pb in batch.drain() {
                delivered.push(u64::from_be_bytes(pb.as_slice()[..8].try_into().unwrap()));
                rx.recycle(pb);
            }
        }

        let stats = reactor.stats();
        assert!(stats.retunes >= 1, "a retune must have been announced");
        assert!(
            stats.retunes_complete >= 1,
            "the receiver must have acked the retune (acks {} complete {})",
            stats.retune_acks,
            stats.retunes_complete
        );
        let ad = reactor.adaptive().expect("attached");
        let q = ad.quanta();
        assert!(
            q[0] > q[1] && q[1] > q[2],
            "tuned quanta {q:?} must order by capacity"
        );
        let ratio = q[0] as f64 / q[2] as f64;
        assert!(
            (2.5..=6.0).contains(&ratio),
            "4:1 capacity split tuned to ratio {ratio} ({q:?})"
        );
        // Quasi-FIFO held across the retune: every id delivered at most
        // once, and any loss-induced backward step stays within a couple
        // of marker intervals of the head — the receiver re-synchronized
        // on markers across the quantum switch instead of drifting.
        assert!(!delivered.is_empty());
        let mut uniq = delivered.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), delivered.len(), "duplicate deliveries");
        let max_backjump = delivered
            .windows(2)
            .filter(|w| w[1] < w[0])
            .map(|w| w[0] - w[1])
            .max()
            .unwrap_or(0);
        assert!(
            max_backjump <= 128,
            "displacement {max_backjump} exceeds a marker-interval bound"
        );
    }

    /// Flush drains frames parked behind kernel/queue backpressure.
    #[test]
    fn poll_flushes_backlog() {
        let (a0, mut b0) = datagram_pair(256, 8);
        // Park frames directly in the link's local queue by filling the
        // peer's in-flight capacity: TestDatagramLink has unbounded
        // in-flight, so emulate by enqueueing via send while "jammed".
        let mut path = NetStripedPath::builder()
            .scheduler(Srr::equal(1, 1500))
            .links(vec![a0])
            .build();
        let mut pkts = vec![bytes::Bytes::from(vec![5u8; 32])];
        let mut out = stripe_transport::TxBatch::new();
        path.send_batch(SimTime::ZERO, &mut pkts, &mut out);
        let mut reactor =
            SenderReactor::new(path, None, SimTime::ZERO, SimDuration::from_millis(1));
        reactor.poll(SimTime::from_millis(1));
        assert_eq!(reactor.stats().polls, 1);
        let mut buf = [0u8; 256];
        assert!(b0.recv_frame(&mut buf).is_some(), "frame reached the peer");
    }
}
