//! The canonical on-wire frame format of the real-socket datapath.
//!
//! Every UDP datagram on a striped channel is exactly one frame:
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 1    | magic (`0xC5`)                                |
//! | 1      | 1    | version (`1`)                                 |
//! | 2      | 1    | kind: `0` = data, `1` = control               |
//! | 3      | …    | body                                          |
//!
//! A *data* frame's body is the application payload, verbatim — the
//! paper's central constraint is that striping never modifies data
//! packets, so the only thing this layer adds is the 3-byte
//! demultiplexing header (the real-network stand-in for the Ethernet
//! type-field codepoint of §5). A *control* frame's body is exactly the
//! bytes of [`Control::encode`] — markers ride as
//! [`Control::Marker`](Control::Marker) — produced through
//! [`Control::encode_into`], so the simulator and the socket path share
//! one encoder and cannot drift.
//!
//! Decoding is zero-copy for data: [`Frame::Data`] borrows the payload
//! from the receive buffer. Anything malformed (bad magic, unknown
//! version or kind, undecodable control body) is reported as `None` and
//! dropped by the caller, exactly like corrupt traffic in the simulated
//! links.

use stripe_core::control::Control;

/// First byte of every frame; chosen to collide with neither the marker
/// magic (`0x53`) nor common text, so misdirected traffic fails loudly.
pub const FRAME_MAGIC: u8 = 0xC5;

/// Current (and only) wire-format version.
pub const FRAME_VERSION: u8 = 1;

/// Frame-kind codepoint for application data.
pub const KIND_DATA: u8 = 0;

/// Frame-kind codepoint for control messages (markers included).
pub const KIND_CONTROL: u8 = 1;

/// Bytes of header preceding the body.
pub const FRAME_HEADER_LEN: usize = 3;

/// One decoded frame. Data borrows straight out of the receive buffer —
/// the payload is never copied by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// An application data packet (payload bytes, unmodified).
    Data(&'a [u8]),
    /// A control message: marker, probe, membership, reset, quantum update.
    Control(Control),
}

/// Append the header for a frame of `kind` to `out`.
fn push_header(kind: u8, out: &mut Vec<u8>) {
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
}

/// Encode a data frame into `out` (cleared first, capacity kept): the
/// steady-state path encodes every frame into a recycled buffer.
pub fn encode_data_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_DATA, out);
    out.extend_from_slice(payload);
}

/// Encode a control frame into `out` (cleared first, capacity kept). The
/// body is produced by [`Control::encode_into`] — the single shared
/// control encoder.
pub fn encode_control_into(ctl: &Control, out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_CONTROL, out);
    ctl.encode_into(out);
}

/// On-wire length of a data frame carrying `payload_len` body bytes.
pub fn data_frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// On-wire length of a control frame, without materializing it.
pub fn control_frame_len(ctl: &Control) -> usize {
    FRAME_HEADER_LEN + ctl.wire_len()
}

/// Whether `frame` is a well-headed data frame — the peek the fault layer
/// uses to drop data while letting markers and control through.
pub fn is_data_frame(frame: &[u8]) -> bool {
    frame.len() >= FRAME_HEADER_LEN
        && frame[0] == FRAME_MAGIC
        && frame[1] == FRAME_VERSION
        && frame[2] == KIND_DATA
}

/// Decode one received frame. `None` on anything malformed; the caller
/// drops it like any corrupt packet (§5 assumes detectable corruption).
pub fn decode(frame: &[u8]) -> Option<Frame<'_>> {
    if frame.len() < FRAME_HEADER_LEN || frame[0] != FRAME_MAGIC || frame[1] != FRAME_VERSION {
        return None;
    }
    let body = &frame[FRAME_HEADER_LEN..];
    match frame[2] {
        KIND_DATA => Some(Frame::Data(body)),
        KIND_CONTROL => Control::decode(body).map(Frame::Control),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stripe_core::sched::ChannelMark;
    use stripe_core::Marker;

    #[test]
    fn data_roundtrips_zero_copy() {
        let payload = [7u8, 8, 9, 10];
        let mut buf = Vec::new();
        encode_data_into(&payload, &mut buf);
        assert_eq!(buf.len(), data_frame_len(payload.len()));
        match decode(&buf) {
            Some(Frame::Data(body)) => {
                assert_eq!(body, &payload);
                // Zero-copy: the decoded body aliases the frame buffer.
                assert!(std::ptr::eq(
                    body.as_ptr(),
                    buf[FRAME_HEADER_LEN..].as_ptr()
                ));
            }
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_data_frame_is_legal() {
        let mut buf = Vec::new();
        encode_data_into(&[], &mut buf);
        assert_eq!(decode(&buf), Some(Frame::Data(&[][..])));
    }

    #[test]
    fn control_roundtrips_every_variant() {
        for ctl in [
            Control::Marker(Marker::sync(3, ChannelMark { round: 99, dc: -5 })),
            Control::ResetRequest { epoch: 7 },
            Control::ResetAck { epoch: 7 },
            Control::QuantumUpdate {
                effective_round: 1 << 33,
                quanta: vec![1500, 4500],
            },
            Control::Probe { nonce: 0xDEAD },
            Control::ProbeAck { nonce: 0xDEAD },
            Control::Membership {
                epoch: 2,
                live_mask: 0b101,
                effective_round: 64,
            },
            Control::MembershipAck { epoch: 2 },
        ] {
            let mut buf = Vec::new();
            encode_control_into(&ctl, &mut buf);
            assert_eq!(buf.len(), control_frame_len(&ctl), "{ctl:?}");
            assert_eq!(decode(&buf), Some(Frame::Control(ctl.clone())), "{ctl:?}");
        }
    }

    #[test]
    fn control_body_is_exactly_the_shared_encoder_bytes() {
        let ctl = Control::Probe { nonce: 42 };
        let mut buf = Vec::new();
        encode_control_into(&ctl, &mut buf);
        assert_eq!(&buf[FRAME_HEADER_LEN..], &ctl.encode()[..]);
    }

    #[test]
    fn encode_into_clears_previous_contents() {
        let mut buf = vec![1, 2, 3, 4, 5];
        encode_data_into(&[9], &mut buf);
        assert_eq!(buf, vec![FRAME_MAGIC, FRAME_VERSION, KIND_DATA, 9]);
    }

    #[test]
    fn malformed_frames_rejected() {
        // Short, bad magic, bad version, unknown kind, bad control body.
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION]), None);
        assert_eq!(decode(&[0x00, FRAME_VERSION, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, 99, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION, 7, 1]), None);
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL, 99]),
            None
        );
    }

    #[test]
    fn is_data_frame_peeks_kind() {
        let mut data = Vec::new();
        encode_data_into(&[1, 2], &mut data);
        assert!(is_data_frame(&data));
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 1 }, &mut ctl);
        assert!(!is_data_frame(&ctl));
        assert!(!is_data_frame(&[FRAME_MAGIC]));
    }
}
