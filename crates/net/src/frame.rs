//! The canonical on-wire frame format of the real-socket datapath.
//!
//! Every UDP datagram on a striped channel is exactly one frame:
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 1    | magic (`0xC5`)                                |
//! | 1      | 1    | version (`1`)                                 |
//! | 2      | 1    | kind: `0` = data, `1` = control, `2` = padded |
//! | 3      | …    | body                                          |
//!
//! A *data* frame's body is the application payload, verbatim — the
//! paper's central constraint is that striping never modifies data
//! packets, so the only thing this layer adds is the 3-byte
//! demultiplexing header (the real-network stand-in for the Ethernet
//! type-field codepoint of §5). A *control* frame's body is exactly the
//! bytes of [`Control::encode`] — markers ride as
//! [`Control::Marker`](Control::Marker) — produced through
//! [`Control::encode_into`], so the simulator and the socket path share
//! one encoder and cannot drift.
//!
//! Decoding is zero-copy for data: [`Frame::Data`] borrows the payload
//! from the receive buffer. Anything malformed (bad magic, unknown
//! version or kind, undecodable control body) is reported as `None` and
//! dropped by the caller, exactly like corrupt traffic in the simulated
//! links.

use stripe_core::control::Control;

/// First byte of every frame; chosen to collide with neither the marker
/// magic (`0x53`) nor common text, so misdirected traffic fails loudly.
pub const FRAME_MAGIC: u8 = 0xC5;

/// Current (and only) wire-format version.
pub const FRAME_VERSION: u8 = 1;

/// Frame-kind codepoint for application data.
pub const KIND_DATA: u8 = 0;

/// Frame-kind codepoint for control messages (markers included).
pub const KIND_CONTROL: u8 = 1;

/// Frame-kind codepoint for a *padded* control message: the body is a
/// little-endian `u16` length, that many [`Control::encode`] bytes, and
/// then arbitrary padding the decoder ignores. Data frames can never be
/// padded (their body is the datagram remainder, verbatim), but control
/// frames can — which lets the sender stretch a 37-byte marker to the
/// exact length of the data frames around it so a segmentation-offload
/// train is not split at every marker (GSO permits only one shorter
/// trailing segment per train). Semantically identical to
/// [`KIND_CONTROL`].
pub const KIND_CONTROL_PADDED: u8 = 2;

/// Frame-kind codepoint for *checksummed* application data: the body is
/// the payload followed by a one-byte CRC-8 of the payload. §5 assumes
/// corruption is detectable; on real channels UDP's 16-bit checksum is
/// optional and weak, so paths that face bit errors (and every chaos
/// soak) opt into this kind. The default [`KIND_DATA`] stays
/// trailer-free, keeping the headline path at zero checksum cost.
pub const KIND_DATA_SUMMED: u8 = 3;

/// Bytes of header preceding the body.
pub const FRAME_HEADER_LEN: usize = 3;

/// Extra body bytes of a [`KIND_CONTROL_PADDED`] frame before the
/// control message itself (the `u16` length prefix).
pub const PAD_LEN_PREFIX: usize = 2;

/// Trailer bytes of a [`KIND_DATA_SUMMED`] frame (the CRC-8).
pub const SUM_TRAILER_LEN: usize = 1;

/// CRC-8, polynomial 0x07 (ATM HEC) — catches every single-bit flip and
/// all burst errors up to 8 bits, which is exactly the corruption model
/// the chaos layer injects. Table built at compile time; one lookup per
/// payload byte.
const CRC8_TABLE: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-8/0x07 over `bytes` (the [`KIND_DATA_SUMMED`] trailer value).
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc = CRC8_TABLE[(crc ^ b) as usize];
    }
    crc
}

/// One decoded frame. Data borrows straight out of the receive buffer —
/// the payload is never copied by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// An application data packet (payload bytes, unmodified).
    Data(&'a [u8]),
    /// A control message: marker, probe, membership, reset, quantum update.
    Control(Control),
}

/// Append the header for a frame of `kind` to `out`.
fn push_header(kind: u8, out: &mut Vec<u8>) {
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
}

/// Encode a data frame into `out` (cleared first, capacity kept): the
/// steady-state path encodes every frame into a recycled buffer.
pub fn encode_data_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_DATA, out);
    out.extend_from_slice(payload);
}

/// Encode a checksummed data frame into `out` (cleared first, capacity
/// kept): payload, then a CRC-8 trailer the decoder verifies. Costs one
/// table lookup per byte on encode and decode — paid only by paths that
/// opt in (integrity mode).
pub fn encode_data_summed_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_DATA_SUMMED, out);
    out.extend_from_slice(payload);
    out.push(crc8(payload));
}

/// Encode a control frame into `out` (cleared first, capacity kept). The
/// body is produced by [`Control::encode_into`] — the single shared
/// control encoder.
pub fn encode_control_into(ctl: &Control, out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_CONTROL, out);
    ctl.encode_into(out);
}

/// Encode a control frame padded out to exactly `wire_len` bytes (cleared
/// first, capacity kept). The body carries an explicit length prefix so
/// the decoder never has to guess where the control message ends, and the
/// tail is zero-filled. If `wire_len` is too small to hold the prefixed
/// message, the frame simply comes out at its natural (unpadded) length —
/// callers should pick `wire_len` from the data frames they are matching.
pub fn encode_control_padded_into(ctl: &Control, wire_len: usize, out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_CONTROL_PADDED, out);
    out.extend_from_slice(&[0, 0]); // length prefix, patched below
    ctl.encode_into(out);
    let body = (out.len() - FRAME_HEADER_LEN - PAD_LEN_PREFIX) as u16;
    out[FRAME_HEADER_LEN..FRAME_HEADER_LEN + PAD_LEN_PREFIX].copy_from_slice(&body.to_le_bytes());
    if out.len() < wire_len {
        out.resize(wire_len, 0);
    }
}

/// On-wire length of a data frame carrying `payload_len` body bytes.
pub fn data_frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// On-wire length of a *checksummed* data frame carrying `payload_len`
/// body bytes.
pub fn summed_frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len + SUM_TRAILER_LEN
}

/// On-wire length of a control frame, without materializing it.
pub fn control_frame_len(ctl: &Control) -> usize {
    FRAME_HEADER_LEN + ctl.wire_len()
}

/// Whether `frame` is a well-headed data frame (either data kind) — the
/// peek the fault layer uses to drop data while letting markers and
/// control through.
pub fn is_data_frame(frame: &[u8]) -> bool {
    frame.len() >= FRAME_HEADER_LEN
        && frame[0] == FRAME_MAGIC
        && frame[1] == FRAME_VERSION
        && (frame[2] == KIND_DATA || frame[2] == KIND_DATA_SUMMED)
}

/// Why a frame failed to decode — the distinction drives separate
/// receiver counters, so a soak can assert "zero corrupted payloads
/// delivered *and* every injected flip was caught".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Structurally broken: short, bad magic/version, unknown kind,
    /// undecodable control body, lying pad prefix.
    Malformed,
    /// Structurally fine but the CRC-8 trailer disagrees with the
    /// payload: bits were flipped in flight.
    Corrupt,
}

/// Decode one received frame, reporting *why* rejects were rejected.
/// Never panics, whatever the input — see the fuzz proptest in
/// `tests/net_loopback.rs`.
pub fn try_decode(frame: &[u8]) -> Result<Frame<'_>, DecodeError> {
    if frame.len() < FRAME_HEADER_LEN || frame[0] != FRAME_MAGIC || frame[1] != FRAME_VERSION {
        return Err(DecodeError::Malformed);
    }
    let body = &frame[FRAME_HEADER_LEN..];
    match frame[2] {
        KIND_DATA => Ok(Frame::Data(body)),
        KIND_DATA_SUMMED => {
            let (&trailer, payload) = body.split_last().ok_or(DecodeError::Malformed)?;
            if crc8(payload) != trailer {
                return Err(DecodeError::Corrupt);
            }
            Ok(Frame::Data(payload))
        }
        KIND_CONTROL => Control::decode(body)
            .map(Frame::Control)
            .ok_or(DecodeError::Malformed),
        KIND_CONTROL_PADDED => {
            let lo = *body.first().ok_or(DecodeError::Malformed)?;
            let hi = *body.get(1).ok_or(DecodeError::Malformed)?;
            let n = u16::from_le_bytes([lo, hi]) as usize;
            let ctl = body
                .get(PAD_LEN_PREFIX..PAD_LEN_PREFIX + n)
                .ok_or(DecodeError::Malformed)?;
            Control::decode(ctl)
                .map(Frame::Control)
                .ok_or(DecodeError::Malformed)
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Decode one received frame. `None` on anything malformed or corrupt;
/// the caller drops it like any corrupt packet (§5 assumes detectable
/// corruption). Callers that need the reason use [`try_decode`].
pub fn decode(frame: &[u8]) -> Option<Frame<'_>> {
    try_decode(frame).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stripe_core::sched::ChannelMark;
    use stripe_core::Marker;

    #[test]
    fn data_roundtrips_zero_copy() {
        let payload = [7u8, 8, 9, 10];
        let mut buf = Vec::new();
        encode_data_into(&payload, &mut buf);
        assert_eq!(buf.len(), data_frame_len(payload.len()));
        match decode(&buf) {
            Some(Frame::Data(body)) => {
                assert_eq!(body, &payload);
                // Zero-copy: the decoded body aliases the frame buffer.
                assert!(std::ptr::eq(
                    body.as_ptr(),
                    buf[FRAME_HEADER_LEN..].as_ptr()
                ));
            }
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_data_frame_is_legal() {
        let mut buf = Vec::new();
        encode_data_into(&[], &mut buf);
        assert_eq!(decode(&buf), Some(Frame::Data(&[][..])));
    }

    #[test]
    fn control_roundtrips_every_variant() {
        for ctl in [
            Control::Marker(Marker::sync(3, ChannelMark { round: 99, dc: -5 })),
            Control::ResetRequest { epoch: 7 },
            Control::ResetAck { epoch: 7 },
            Control::QuantumUpdate {
                effective_round: 1 << 33,
                quanta: vec![1500, 4500],
            },
            Control::Probe { nonce: 0xDEAD },
            Control::ProbeAck { nonce: 0xDEAD },
            Control::Membership {
                epoch: 2,
                live_mask: 0b101,
                effective_round: 64,
            },
            Control::MembershipAck { epoch: 2 },
        ] {
            let mut buf = Vec::new();
            encode_control_into(&ctl, &mut buf);
            assert_eq!(buf.len(), control_frame_len(&ctl), "{ctl:?}");
            assert_eq!(decode(&buf), Some(Frame::Control(ctl.clone())), "{ctl:?}");
        }
    }

    #[test]
    fn control_body_is_exactly_the_shared_encoder_bytes() {
        let ctl = Control::Probe { nonce: 42 };
        let mut buf = Vec::new();
        encode_control_into(&ctl, &mut buf);
        assert_eq!(&buf[FRAME_HEADER_LEN..], &ctl.encode()[..]);
    }

    #[test]
    fn encode_into_clears_previous_contents() {
        let mut buf = vec![1, 2, 3, 4, 5];
        encode_data_into(&[9], &mut buf);
        assert_eq!(buf, vec![FRAME_MAGIC, FRAME_VERSION, KIND_DATA, 9]);
    }

    #[test]
    fn malformed_frames_rejected() {
        // Short, bad magic, bad version, unknown kind, bad control body.
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION]), None);
        assert_eq!(decode(&[0x00, FRAME_VERSION, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, 99, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION, 7, 1]), None);
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL, 99]),
            None
        );
    }

    #[test]
    fn padded_control_roundtrips_at_any_target_length() {
        let ctl = Control::Marker(Marker::sync(1, ChannelMark { round: 12, dc: 3 }));
        let natural = control_frame_len(&ctl) + PAD_LEN_PREFIX;
        // Below natural (no pad fits), exactly natural, and well above.
        for wire_len in [0, natural, natural + 1, 1203] {
            let mut buf = Vec::new();
            encode_control_padded_into(&ctl, wire_len, &mut buf);
            assert_eq!(buf.len(), wire_len.max(natural), "target {wire_len}");
            assert_eq!(decode(&buf), Some(Frame::Control(ctl.clone())));
            assert!(!is_data_frame(&buf));
        }
    }

    #[test]
    fn padded_control_ignores_nonzero_padding() {
        // Decoding depends only on the length prefix, not on the pad
        // bytes being zero — a receiver must never trust the tail.
        let ctl = Control::Probe { nonce: 7 };
        let mut buf = Vec::new();
        encode_control_padded_into(&ctl, 64, &mut buf);
        for b in &mut buf[FRAME_HEADER_LEN + PAD_LEN_PREFIX + ctl.wire_len()..] {
            *b = 0xFF;
        }
        assert_eq!(decode(&buf), Some(Frame::Control(ctl)));
    }

    #[test]
    fn padded_control_with_lying_length_prefix_rejected() {
        let ctl = Control::Probe { nonce: 7 };
        let mut buf = Vec::new();
        encode_control_padded_into(&ctl, 16, &mut buf);
        // Claim more body bytes than the frame holds.
        buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + PAD_LEN_PREFIX]
            .copy_from_slice(&1000u16.to_le_bytes());
        assert_eq!(decode(&buf), None);
        // Truncated before the length prefix ends.
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL_PADDED, 1]),
            None
        );
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL_PADDED]),
            None
        );
    }

    #[test]
    fn is_data_frame_peeks_kind() {
        let mut data = Vec::new();
        encode_data_into(&[1, 2], &mut data);
        assert!(is_data_frame(&data));
        let mut summed = Vec::new();
        encode_data_summed_into(&[1, 2], &mut summed);
        assert!(is_data_frame(&summed));
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 1 }, &mut ctl);
        assert!(!is_data_frame(&ctl));
        assert!(!is_data_frame(&[FRAME_MAGIC]));
    }

    #[test]
    fn summed_data_roundtrips() {
        let payload = [7u8, 8, 9, 10];
        let mut buf = Vec::new();
        encode_data_summed_into(&payload, &mut buf);
        assert_eq!(buf.len(), summed_frame_len(payload.len()));
        match try_decode(&buf) {
            Ok(Frame::Data(body)) => {
                assert_eq!(body, &payload, "trailer must be stripped");
                // Still zero-copy: the payload aliases the frame buffer.
                assert!(std::ptr::eq(
                    body.as_ptr(),
                    buf[FRAME_HEADER_LEN..].as_ptr()
                ));
            }
            other => panic!("expected data frame, got {other:?}"),
        }
        let mut empty = Vec::new();
        encode_data_summed_into(&[], &mut empty);
        assert_eq!(try_decode(&empty), Ok(Frame::Data(&[][..])));
    }

    #[test]
    fn summed_data_catches_every_single_bit_flip() {
        let payload: Vec<u8> = (0..57).collect();
        let mut clean = Vec::new();
        encode_data_summed_into(&payload, &mut clean);
        // Flip each body bit (payload and trailer) in turn: all caught.
        for byte in FRAME_HEADER_LEN..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                assert_eq!(
                    try_decode(&buf),
                    Err(DecodeError::Corrupt),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn summed_data_without_trailer_is_malformed_not_corrupt() {
        // A bare header of kind 3 has no room for the CRC byte.
        assert_eq!(
            try_decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_DATA_SUMMED]),
            Err(DecodeError::Malformed)
        );
    }

    #[test]
    fn try_decode_classifies_malformed_vs_corrupt() {
        assert_eq!(try_decode(&[]), Err(DecodeError::Malformed));
        assert_eq!(
            try_decode(&[0x00, FRAME_VERSION, KIND_DATA, 1]),
            Err(DecodeError::Malformed)
        );
        assert_eq!(
            try_decode(&[FRAME_MAGIC, FRAME_VERSION, 9, 1]),
            Err(DecodeError::Malformed)
        );
        let mut buf = Vec::new();
        encode_data_summed_into(&[1, 2, 3], &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert_eq!(try_decode(&buf), Err(DecodeError::Corrupt));
        // decode() folds both reject reasons into None.
        assert_eq!(decode(&buf), None);
    }

    #[test]
    fn crc8_known_vector() {
        // CRC-8/SMBUS ("123456789") = 0xF4 for poly 0x07, init 0.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0);
    }
}
