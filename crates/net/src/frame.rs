//! The canonical on-wire frame format of the real-socket datapath.
//!
//! Every UDP datagram on a striped channel is exactly one frame:
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 1    | magic (`0xC5`)                                |
//! | 1      | 1    | version (`1`)                                 |
//! | 2      | 1    | kind: `0` = data, `1` = control, `2` = padded |
//! | 3      | …    | body                                          |
//!
//! A *data* frame's body is the application payload, verbatim — the
//! paper's central constraint is that striping never modifies data
//! packets, so the only thing this layer adds is the 3-byte
//! demultiplexing header (the real-network stand-in for the Ethernet
//! type-field codepoint of §5). A *control* frame's body is exactly the
//! bytes of [`Control::encode`] — markers ride as
//! [`Control::Marker`](Control::Marker) — produced through
//! [`Control::encode_into`], so the simulator and the socket path share
//! one encoder and cannot drift.
//!
//! Decoding is zero-copy for data: [`Frame::Data`] borrows the payload
//! from the receive buffer. Anything malformed (bad magic, unknown
//! version or kind, undecodable control body) is reported as `None` and
//! dropped by the caller, exactly like corrupt traffic in the simulated
//! links.

use stripe_core::control::Control;

/// First byte of every frame; chosen to collide with neither the marker
/// magic (`0x53`) nor common text, so misdirected traffic fails loudly.
pub const FRAME_MAGIC: u8 = 0xC5;

/// The original (single-flow) wire-format version: the body follows the
/// 3-byte header directly and the frame implicitly belongs to flow 0.
pub const FRAME_VERSION: u8 = 1;

/// The multi-flow wire-format version: a LEB128 varint flow id sits
/// between the 3-byte header and the body, for every kind. Kind
/// codepoints and body encodings are unchanged from version 1 — the
/// version bump is *only* the flow-id field, so a version-1 frame is
/// exactly a version-2 frame with the flow id elided (the legacy decode
/// path in [`try_decode_flow`] maps it to flow 0).
pub const FRAME_VERSION_FLOW: u8 = 2;

/// Longest LEB128 encoding of a `u32` flow id.
pub const MAX_FLOW_ID_LEN: usize = 5;

/// Frame-kind codepoint for application data.
pub const KIND_DATA: u8 = 0;

/// Frame-kind codepoint for control messages (markers included).
pub const KIND_CONTROL: u8 = 1;

/// Frame-kind codepoint for a *padded* control message: the body is a
/// little-endian `u16` length, that many [`Control::encode`] bytes, and
/// then arbitrary padding the decoder ignores. Data frames can never be
/// padded (their body is the datagram remainder, verbatim), but control
/// frames can — which lets the sender stretch a 37-byte marker to the
/// exact length of the data frames around it so a segmentation-offload
/// train is not split at every marker (GSO permits only one shorter
/// trailing segment per train). Semantically identical to
/// [`KIND_CONTROL`].
pub const KIND_CONTROL_PADDED: u8 = 2;

/// Frame-kind codepoint for *checksummed* application data: the body is
/// the payload followed by a one-byte CRC-8 of the payload. §5 assumes
/// corruption is detectable; on real channels UDP's 16-bit checksum is
/// optional and weak, so paths that face bit errors (and every chaos
/// soak) opt into this kind. The default [`KIND_DATA`] stays
/// trailer-free, keeping the headline path at zero checksum cost.
pub const KIND_DATA_SUMMED: u8 = 3;

/// Bytes of header preceding the body.
pub const FRAME_HEADER_LEN: usize = 3;

/// Extra body bytes of a [`KIND_CONTROL_PADDED`] frame before the
/// control message itself (the `u16` length prefix).
pub const PAD_LEN_PREFIX: usize = 2;

/// Trailer bytes of a [`KIND_DATA_SUMMED`] frame (the CRC-8).
pub const SUM_TRAILER_LEN: usize = 1;

/// CRC-8, polynomial 0x07 (ATM HEC) — catches every single-bit flip and
/// all burst errors up to 8 bits, which is exactly the corruption model
/// the chaos layer injects. Table built at compile time; one lookup per
/// payload byte.
const CRC8_TABLE: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-8/0x07 over `bytes` (the [`KIND_DATA_SUMMED`] trailer value).
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc = CRC8_TABLE[(crc ^ b) as usize];
    }
    crc
}

/// One decoded frame. Data borrows straight out of the receive buffer —
/// the payload is never copied by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// An application data packet (payload bytes, unmodified).
    Data(&'a [u8]),
    /// A control message: marker, probe, membership, reset, quantum update.
    Control(Control),
}

/// Append the header for a frame of `kind` to `out`.
fn push_header(kind: u8, out: &mut Vec<u8>) {
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
}

/// Append the version-2 header plus the varint flow id to `out`.
fn push_flow_header(kind: u8, flow: u32, out: &mut Vec<u8>) {
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION_FLOW);
    out.push(kind);
    let mut v = flow;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of a flow id's LEB128 varint.
pub fn flow_id_len(flow: u32) -> usize {
    match flow {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

/// Parse a LEB128 flow id from the start of `body`; returns the id and
/// the number of bytes it occupied. `None` on truncation or a varint
/// longer than [`MAX_FLOW_ID_LEN`] (a `u32` never needs more).
fn take_flow_id(body: &[u8]) -> Option<(u32, usize)> {
    let mut flow: u32 = 0;
    for (i, &b) in body.iter().enumerate().take(MAX_FLOW_ID_LEN) {
        let payload = (b & 0x7F) as u32;
        // The fifth byte may only carry the top 4 bits of a u32.
        if i == MAX_FLOW_ID_LEN - 1 && b & 0xF0 != 0 {
            return None;
        }
        flow |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Some((flow, i + 1));
        }
    }
    None
}

/// Encode a data frame into `out` (cleared first, capacity kept): the
/// steady-state path encodes every frame into a recycled buffer.
pub fn encode_data_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_DATA, out);
    out.extend_from_slice(payload);
}

/// Encode a checksummed data frame into `out` (cleared first, capacity
/// kept): payload, then a CRC-8 trailer the decoder verifies. Costs one
/// table lookup per byte on encode and decode — paid only by paths that
/// opt in (integrity mode).
pub fn encode_data_summed_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_DATA_SUMMED, out);
    out.extend_from_slice(payload);
    out.push(crc8(payload));
}

/// Encode a control frame into `out` (cleared first, capacity kept). The
/// body is produced by [`Control::encode_into`] — the single shared
/// control encoder.
pub fn encode_control_into(ctl: &Control, out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_CONTROL, out);
    ctl.encode_into(out);
}

/// Encode a control frame padded out to exactly `wire_len` bytes (cleared
/// first, capacity kept). The body carries an explicit length prefix so
/// the decoder never has to guess where the control message ends, and the
/// tail is zero-filled. If `wire_len` is too small to hold the prefixed
/// message, the frame simply comes out at its natural (unpadded) length —
/// callers should pick `wire_len` from the data frames they are matching.
pub fn encode_control_padded_into(ctl: &Control, wire_len: usize, out: &mut Vec<u8>) {
    out.clear();
    push_header(KIND_CONTROL_PADDED, out);
    out.extend_from_slice(&[0, 0]); // length prefix, patched below
    ctl.encode_into(out);
    let body = (out.len() - FRAME_HEADER_LEN - PAD_LEN_PREFIX) as u16;
    out[FRAME_HEADER_LEN..FRAME_HEADER_LEN + PAD_LEN_PREFIX].copy_from_slice(&body.to_le_bytes());
    if out.len() < wire_len {
        out.resize(wire_len, 0);
    }
}

/// Encode a flow-tagged data frame (version 2) into `out` (cleared
/// first, capacity kept).
pub fn encode_data_flow_into(flow: u32, payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_flow_header(KIND_DATA, flow, out);
    out.extend_from_slice(payload);
}

/// Encode a flow-tagged checksummed data frame (version 2) into `out`.
/// The CRC-8 trailer covers the payload only, exactly as in version 1 —
/// the flow id is header, not body.
pub fn encode_data_summed_flow_into(flow: u32, payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    push_flow_header(KIND_DATA_SUMMED, flow, out);
    out.extend_from_slice(payload);
    out.push(crc8(payload));
}

/// Encode a flow-tagged control frame (version 2) into `out`.
pub fn encode_control_flow_into(flow: u32, ctl: &Control, out: &mut Vec<u8>) {
    out.clear();
    push_flow_header(KIND_CONTROL, flow, out);
    ctl.encode_into(out);
}

/// Encode a flow-tagged control frame padded out to exactly `wire_len`
/// bytes (version 2) — the GSO-train trick of
/// [`encode_control_padded_into`], flow-tagged.
pub fn encode_control_padded_flow_into(
    flow: u32,
    ctl: &Control,
    wire_len: usize,
    out: &mut Vec<u8>,
) {
    out.clear();
    push_flow_header(KIND_CONTROL_PADDED, flow, out);
    let prefix_at = out.len();
    out.extend_from_slice(&[0, 0]); // length prefix, patched below
    ctl.encode_into(out);
    let body = (out.len() - prefix_at - PAD_LEN_PREFIX) as u16;
    out[prefix_at..prefix_at + PAD_LEN_PREFIX].copy_from_slice(&body.to_le_bytes());
    if out.len() < wire_len {
        out.resize(wire_len, 0);
    }
}

/// On-wire length of a data frame carrying `payload_len` body bytes.
pub fn data_frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// On-wire length of a flow-tagged data frame.
pub fn data_flow_frame_len(flow: u32, payload_len: usize) -> usize {
    FRAME_HEADER_LEN + flow_id_len(flow) + payload_len
}

/// On-wire length of a flow-tagged checksummed data frame.
pub fn summed_flow_frame_len(flow: u32, payload_len: usize) -> usize {
    FRAME_HEADER_LEN + flow_id_len(flow) + payload_len + SUM_TRAILER_LEN
}

/// On-wire length of a flow-tagged control frame.
pub fn control_flow_frame_len(flow: u32, ctl: &Control) -> usize {
    FRAME_HEADER_LEN + flow_id_len(flow) + ctl.wire_len()
}

/// On-wire length of a *checksummed* data frame carrying `payload_len`
/// body bytes.
pub fn summed_frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len + SUM_TRAILER_LEN
}

/// On-wire length of a control frame, without materializing it.
pub fn control_frame_len(ctl: &Control) -> usize {
    FRAME_HEADER_LEN + ctl.wire_len()
}

/// Whether `frame` is a well-headed data frame (either data kind) — the
/// peek the fault layer uses to drop data while letting markers and
/// control through.
pub fn is_data_frame(frame: &[u8]) -> bool {
    frame.len() >= FRAME_HEADER_LEN
        && frame[0] == FRAME_MAGIC
        && (frame[1] == FRAME_VERSION || frame[1] == FRAME_VERSION_FLOW)
        && (frame[2] == KIND_DATA || frame[2] == KIND_DATA_SUMMED)
}

/// Why a frame failed to decode — the distinction drives separate
/// receiver counters, so a soak can assert "zero corrupted payloads
/// delivered *and* every injected flip was caught".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Structurally broken: short, bad magic/version, unknown kind,
    /// undecodable control body, lying pad prefix.
    Malformed,
    /// Structurally fine but the CRC-8 trailer disagrees with the
    /// payload: bits were flipped in flight.
    Corrupt,
}

/// Decode a frame body given its kind — shared by the version-1 and
/// version-2 paths, which differ only in what precedes the body.
fn decode_body(kind: u8, body: &[u8]) -> Result<Frame<'_>, DecodeError> {
    match kind {
        KIND_DATA => Ok(Frame::Data(body)),
        KIND_DATA_SUMMED => {
            let (&trailer, payload) = body.split_last().ok_or(DecodeError::Malformed)?;
            if crc8(payload) != trailer {
                return Err(DecodeError::Corrupt);
            }
            Ok(Frame::Data(payload))
        }
        KIND_CONTROL => Control::decode(body)
            .map(Frame::Control)
            .ok_or(DecodeError::Malformed),
        KIND_CONTROL_PADDED => {
            let lo = *body.first().ok_or(DecodeError::Malformed)?;
            let hi = *body.get(1).ok_or(DecodeError::Malformed)?;
            let n = u16::from_le_bytes([lo, hi]) as usize;
            let ctl = body
                .get(PAD_LEN_PREFIX..PAD_LEN_PREFIX + n)
                .ok_or(DecodeError::Malformed)?;
            Control::decode(ctl)
                .map(Frame::Control)
                .ok_or(DecodeError::Malformed)
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Decode one received frame, reporting *why* rejects were rejected.
/// Never panics, whatever the input — see the fuzz proptest in
/// `tests/net_loopback.rs`.
///
/// Version-1 only: a single-flow receiver must *not* silently accept
/// flow-tagged traffic it would misattribute to its one flow. Endpoints
/// that speak both versions use [`try_decode_flow`].
pub fn try_decode(frame: &[u8]) -> Result<Frame<'_>, DecodeError> {
    if frame.len() < FRAME_HEADER_LEN || frame[0] != FRAME_MAGIC || frame[1] != FRAME_VERSION {
        return Err(DecodeError::Malformed);
    }
    decode_body(frame[2], &frame[FRAME_HEADER_LEN..])
}

/// Decode one received frame of *either* version, returning the flow it
/// belongs to: a version-2 frame's varint flow id, or flow 0 for a
/// legacy version-1 frame. This is the receive path of a multi-flow
/// demultiplexer, which stays wire-compatible with single-flow senders.
pub fn try_decode_flow(frame: &[u8]) -> Result<(u32, Frame<'_>), DecodeError> {
    if frame.len() < FRAME_HEADER_LEN || frame[0] != FRAME_MAGIC {
        return Err(DecodeError::Malformed);
    }
    match frame[1] {
        FRAME_VERSION => decode_body(frame[2], &frame[FRAME_HEADER_LEN..]).map(|f| (0, f)),
        FRAME_VERSION_FLOW => {
            let (flow, used) =
                take_flow_id(&frame[FRAME_HEADER_LEN..]).ok_or(DecodeError::Malformed)?;
            decode_body(frame[2], &frame[FRAME_HEADER_LEN + used..]).map(|f| (flow, f))
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Byte offset of a decoded frame's body: where the payload of a data
/// frame starts inside the datagram. [`FRAME_HEADER_LEN`] for version 1;
/// header plus varint for version 2. `None` if the frame is too short to
/// tell. Receivers use this to keep payloads zero-copy in their pooled
/// buffers whichever version arrived.
pub fn body_offset(frame: &[u8]) -> Option<usize> {
    if frame.len() < FRAME_HEADER_LEN {
        return None;
    }
    match frame[1] {
        FRAME_VERSION => Some(FRAME_HEADER_LEN),
        FRAME_VERSION_FLOW => {
            take_flow_id(&frame[FRAME_HEADER_LEN..]).map(|(_, used)| FRAME_HEADER_LEN + used)
        }
        _ => None,
    }
}

/// Decode one received frame. `None` on anything malformed or corrupt;
/// the caller drops it like any corrupt packet (§5 assumes detectable
/// corruption). Callers that need the reason use [`try_decode`].
pub fn decode(frame: &[u8]) -> Option<Frame<'_>> {
    try_decode(frame).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stripe_core::sched::ChannelMark;
    use stripe_core::Marker;

    #[test]
    fn data_roundtrips_zero_copy() {
        let payload = [7u8, 8, 9, 10];
        let mut buf = Vec::new();
        encode_data_into(&payload, &mut buf);
        assert_eq!(buf.len(), data_frame_len(payload.len()));
        match decode(&buf) {
            Some(Frame::Data(body)) => {
                assert_eq!(body, &payload);
                // Zero-copy: the decoded body aliases the frame buffer.
                assert!(std::ptr::eq(
                    body.as_ptr(),
                    buf[FRAME_HEADER_LEN..].as_ptr()
                ));
            }
            other => panic!("expected data frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_data_frame_is_legal() {
        let mut buf = Vec::new();
        encode_data_into(&[], &mut buf);
        assert_eq!(decode(&buf), Some(Frame::Data(&[][..])));
    }

    #[test]
    fn control_roundtrips_every_variant() {
        for ctl in [
            Control::Marker(Marker::sync(3, ChannelMark { round: 99, dc: -5 })),
            Control::ResetRequest { epoch: 7 },
            Control::ResetAck { epoch: 7 },
            Control::QuantumUpdate {
                effective_round: 1 << 33,
                quanta: vec![1500, 4500],
            },
            Control::Probe { nonce: 0xDEAD },
            Control::ProbeAck {
                nonce: 0xDEAD,
                incarnation: 0xFEED_FACE,
            },
            Control::DesyncAlert {
                incarnation: 0xFEED_FACE,
            },
            Control::Membership {
                epoch: 2,
                live_mask: 0b101,
                effective_round: 64,
            },
            Control::MembershipAck { epoch: 2 },
        ] {
            let mut buf = Vec::new();
            encode_control_into(&ctl, &mut buf);
            assert_eq!(buf.len(), control_frame_len(&ctl), "{ctl:?}");
            assert_eq!(decode(&buf), Some(Frame::Control(ctl.clone())), "{ctl:?}");
        }
    }

    #[test]
    fn control_body_is_exactly_the_shared_encoder_bytes() {
        let ctl = Control::Probe { nonce: 42 };
        let mut buf = Vec::new();
        encode_control_into(&ctl, &mut buf);
        assert_eq!(&buf[FRAME_HEADER_LEN..], &ctl.encode()[..]);
    }

    #[test]
    fn encode_into_clears_previous_contents() {
        let mut buf = vec![1, 2, 3, 4, 5];
        encode_data_into(&[9], &mut buf);
        assert_eq!(buf, vec![FRAME_MAGIC, FRAME_VERSION, KIND_DATA, 9]);
    }

    #[test]
    fn malformed_frames_rejected() {
        // Short, bad magic, bad version, unknown kind, bad control body.
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION]), None);
        assert_eq!(decode(&[0x00, FRAME_VERSION, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, 99, KIND_DATA, 1]), None);
        assert_eq!(decode(&[FRAME_MAGIC, FRAME_VERSION, 7, 1]), None);
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL, 99]),
            None
        );
    }

    #[test]
    fn padded_control_roundtrips_at_any_target_length() {
        let ctl = Control::Marker(Marker::sync(1, ChannelMark { round: 12, dc: 3 }));
        let natural = control_frame_len(&ctl) + PAD_LEN_PREFIX;
        // Below natural (no pad fits), exactly natural, and well above.
        for wire_len in [0, natural, natural + 1, 1203] {
            let mut buf = Vec::new();
            encode_control_padded_into(&ctl, wire_len, &mut buf);
            assert_eq!(buf.len(), wire_len.max(natural), "target {wire_len}");
            assert_eq!(decode(&buf), Some(Frame::Control(ctl.clone())));
            assert!(!is_data_frame(&buf));
        }
    }

    #[test]
    fn padded_control_ignores_nonzero_padding() {
        // Decoding depends only on the length prefix, not on the pad
        // bytes being zero — a receiver must never trust the tail.
        let ctl = Control::Probe { nonce: 7 };
        let mut buf = Vec::new();
        encode_control_padded_into(&ctl, 64, &mut buf);
        for b in &mut buf[FRAME_HEADER_LEN + PAD_LEN_PREFIX + ctl.wire_len()..] {
            *b = 0xFF;
        }
        assert_eq!(decode(&buf), Some(Frame::Control(ctl)));
    }

    #[test]
    fn padded_control_with_lying_length_prefix_rejected() {
        let ctl = Control::Probe { nonce: 7 };
        let mut buf = Vec::new();
        encode_control_padded_into(&ctl, 16, &mut buf);
        // Claim more body bytes than the frame holds.
        buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + PAD_LEN_PREFIX]
            .copy_from_slice(&1000u16.to_le_bytes());
        assert_eq!(decode(&buf), None);
        // Truncated before the length prefix ends.
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL_PADDED, 1]),
            None
        );
        assert_eq!(
            decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_CONTROL_PADDED]),
            None
        );
    }

    #[test]
    fn is_data_frame_peeks_kind() {
        let mut data = Vec::new();
        encode_data_into(&[1, 2], &mut data);
        assert!(is_data_frame(&data));
        let mut summed = Vec::new();
        encode_data_summed_into(&[1, 2], &mut summed);
        assert!(is_data_frame(&summed));
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 1 }, &mut ctl);
        assert!(!is_data_frame(&ctl));
        assert!(!is_data_frame(&[FRAME_MAGIC]));
    }

    #[test]
    fn summed_data_roundtrips() {
        let payload = [7u8, 8, 9, 10];
        let mut buf = Vec::new();
        encode_data_summed_into(&payload, &mut buf);
        assert_eq!(buf.len(), summed_frame_len(payload.len()));
        match try_decode(&buf) {
            Ok(Frame::Data(body)) => {
                assert_eq!(body, &payload, "trailer must be stripped");
                // Still zero-copy: the payload aliases the frame buffer.
                assert!(std::ptr::eq(
                    body.as_ptr(),
                    buf[FRAME_HEADER_LEN..].as_ptr()
                ));
            }
            other => panic!("expected data frame, got {other:?}"),
        }
        let mut empty = Vec::new();
        encode_data_summed_into(&[], &mut empty);
        assert_eq!(try_decode(&empty), Ok(Frame::Data(&[][..])));
    }

    #[test]
    fn summed_data_catches_every_single_bit_flip() {
        let payload: Vec<u8> = (0..57).collect();
        let mut clean = Vec::new();
        encode_data_summed_into(&payload, &mut clean);
        // Flip each body bit (payload and trailer) in turn: all caught.
        for byte in FRAME_HEADER_LEN..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                assert_eq!(
                    try_decode(&buf),
                    Err(DecodeError::Corrupt),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn summed_data_without_trailer_is_malformed_not_corrupt() {
        // A bare header of kind 3 has no room for the CRC byte.
        assert_eq!(
            try_decode(&[FRAME_MAGIC, FRAME_VERSION, KIND_DATA_SUMMED]),
            Err(DecodeError::Malformed)
        );
    }

    #[test]
    fn try_decode_classifies_malformed_vs_corrupt() {
        assert_eq!(try_decode(&[]), Err(DecodeError::Malformed));
        assert_eq!(
            try_decode(&[0x00, FRAME_VERSION, KIND_DATA, 1]),
            Err(DecodeError::Malformed)
        );
        assert_eq!(
            try_decode(&[FRAME_MAGIC, FRAME_VERSION, 9, 1]),
            Err(DecodeError::Malformed)
        );
        let mut buf = Vec::new();
        encode_data_summed_into(&[1, 2, 3], &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert_eq!(try_decode(&buf), Err(DecodeError::Corrupt));
        // decode() folds both reject reasons into None.
        assert_eq!(decode(&buf), None);
    }

    #[test]
    fn flow_data_roundtrips_zero_copy_at_varint_boundaries() {
        let payload = [1u8, 2, 3, 4, 5];
        for flow in [0u32, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 0x1F_FFFF, u32::MAX] {
            let mut buf = Vec::new();
            encode_data_flow_into(flow, &payload, &mut buf);
            assert_eq!(buf.len(), data_flow_frame_len(flow, payload.len()));
            match try_decode_flow(&buf) {
                Ok((f, Frame::Data(body))) => {
                    assert_eq!(f, flow);
                    assert_eq!(body, &payload);
                    // Zero-copy: the body aliases the frame buffer.
                    let off = body_offset(&buf).unwrap();
                    assert!(std::ptr::eq(body.as_ptr(), buf[off..].as_ptr()));
                }
                other => panic!("flow {flow}: {other:?}"),
            }
            // A v1-only decoder must reject flow-tagged frames outright.
            assert_eq!(try_decode(&buf), Err(DecodeError::Malformed));
        }
    }

    #[test]
    fn flow_summed_data_roundtrips_and_catches_flips() {
        let payload: Vec<u8> = (0..40).collect();
        let mut buf = Vec::new();
        encode_data_summed_flow_into(9000, &payload, &mut buf);
        assert_eq!(buf.len(), summed_flow_frame_len(9000, payload.len()));
        assert_eq!(try_decode_flow(&buf), Ok((9000, Frame::Data(&payload[..]))));
        let off = body_offset(&buf).unwrap();
        let mut evil = buf.clone();
        evil[off + 3] ^= 0x04;
        assert_eq!(try_decode_flow(&evil), Err(DecodeError::Corrupt));
    }

    #[test]
    fn flow_control_and_padded_roundtrip() {
        let ctl = Control::Marker(Marker::sync(2, ChannelMark { round: 7, dc: -1 }));
        let mut buf = Vec::new();
        encode_control_flow_into(777, &ctl, &mut buf);
        assert_eq!(buf.len(), control_flow_frame_len(777, &ctl));
        assert_eq!(
            try_decode_flow(&buf),
            Ok((777, Frame::Control(ctl.clone())))
        );
        assert!(!is_data_frame(&buf));
        for wire_len in [0, 64, 1200] {
            let mut padded = Vec::new();
            encode_control_padded_flow_into(777, &ctl, wire_len, &mut padded);
            assert!(padded.len() >= wire_len);
            assert_eq!(
                try_decode_flow(&padded),
                Ok((777, Frame::Control(ctl.clone()))),
                "target {wire_len}"
            );
        }
    }

    #[test]
    fn try_decode_flow_accepts_legacy_as_flow_zero() {
        let mut data = Vec::new();
        encode_data_into(&[5, 6], &mut data);
        assert_eq!(try_decode_flow(&data), Ok((0, Frame::Data(&[5, 6][..]))));
        let mut ctl = Vec::new();
        encode_control_into(&Control::Probe { nonce: 3 }, &mut ctl);
        assert_eq!(
            try_decode_flow(&ctl),
            Ok((0, Frame::Control(Control::Probe { nonce: 3 })))
        );
        assert_eq!(body_offset(&data), Some(FRAME_HEADER_LEN));
    }

    #[test]
    fn flow_id_encoding_is_canonical_leb128() {
        for flow in [0u32, 0x7F, 0x80, 0x3FFF, 0x4000, u32::MAX] {
            let mut buf = Vec::new();
            encode_data_flow_into(flow, &[], &mut buf);
            assert_eq!(buf.len() - FRAME_HEADER_LEN, flow_id_len(flow), "{flow}");
        }
    }

    #[test]
    fn truncated_or_overlong_flow_id_is_malformed() {
        // Header promising a varint that never terminates.
        let truncated = [FRAME_MAGIC, FRAME_VERSION_FLOW, KIND_DATA, 0x80];
        assert_eq!(try_decode_flow(&truncated), Err(DecodeError::Malformed));
        // Six continuation bytes: longer than any u32 varint.
        let overlong = [
            FRAME_MAGIC,
            FRAME_VERSION_FLOW,
            KIND_DATA,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x01,
        ];
        assert_eq!(try_decode_flow(&overlong), Err(DecodeError::Malformed));
        // Fifth byte carrying bits a u32 cannot hold.
        let overflow = [
            FRAME_MAGIC,
            FRAME_VERSION_FLOW,
            KIND_DATA,
            0xFF,
            0xFF,
            0xFF,
            0xFF,
            0x7F,
        ];
        assert_eq!(try_decode_flow(&overflow), Err(DecodeError::Malformed));
        // Unknown version for both decoders.
        assert_eq!(
            try_decode_flow(&[FRAME_MAGIC, 3, KIND_DATA, 1]),
            Err(DecodeError::Malformed)
        );
    }

    #[test]
    fn is_data_frame_accepts_both_versions() {
        let mut v2 = Vec::new();
        encode_data_flow_into(12, &[1], &mut v2);
        assert!(is_data_frame(&v2));
        let mut v2c = Vec::new();
        encode_control_flow_into(12, &Control::Probe { nonce: 1 }, &mut v2c);
        assert!(!is_data_frame(&v2c));
    }

    #[test]
    fn crc8_known_vector() {
        // CRC-8/SMBUS ("123456789") = 0xF4 for poly 0x07, init 0.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0);
    }
}
