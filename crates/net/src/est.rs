//! Online per-channel estimation: the evidence half of the adaptive
//! striping control plane.
//!
//! The paper's SRR striper assumes channel rates are known and fixed;
//! real channel sets drift. [`ChannelEstimator`] turns the raw
//! evidence the datapath already produces — cumulative
//! [`TxEvidence`](stripe_link::TxEvidence) counters from each
//! [`DatagramLink`](stripe_link::DatagramLink), and the liveness
//! tracker's probe/ack nonces — into three smoothed per-channel
//! figures:
//!
//! - **goodput** (bytes/s): an EWMA over the carried-byte rate between
//!   successive evidence samples. Under a `chaos` token-bucket plan
//!   the carried bytes are post-policer, so the estimate converges to
//!   the scripted capacity — reproducible ground truth.
//! - **RTT** (ns): Jacobson/Karels smoothed RTT + variance from probe
//!   send/ack timestamps. Probes are serialized per channel by the
//!   liveness tracker, so one outstanding-probe slot per channel
//!   suffices — no allocation, no map.
//! - **loss** (fraction): an EWMA over per-sample drop fractions from
//!   the same counters (local queue overflow, policer, socket errors).
//!
//! Everything here is pull-based and allocation-free after
//! construction: the reactor samples each link once per estimation
//! tick and reads the smoothed values out when the tuner runs. The
//! estimators never act — mapping estimates to quanta is
//! `stripe_core::sched::tuner`'s job.

use stripe_link::TxEvidence;

/// Default EWMA gain for goodput and loss: 1/4 — fast enough to track
/// a capacity change within a handful of estimation ticks, slow enough
/// to ride out per-tick burstiness from batched pumps.
pub const DEFAULT_GAIN: f64 = 0.25;

/// An exponentially weighted moving average that reports its prime
/// state: the first sample seeds the average instead of being blended
/// with a meaningless zero.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    value: f64,
    gain: f64,
    primed: bool,
}

impl Ewma {
    /// An empty average with blend factor `gain` in `(0, 1]` (the
    /// weight of each new sample).
    ///
    /// # Panics
    /// Panics unless `0 < gain <= 1`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "EWMA gain {gain} out of (0,1]");
        Self {
            value: 0.0,
            gain,
            primed: false,
        }
    }

    /// Blend one sample in.
    pub fn sample(&mut self, x: f64) {
        if self.primed {
            self.value += self.gain * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
    }

    /// The current average (0.0 until the first sample).
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample has been blended.
    pub fn primed(&self) -> bool {
        self.primed
    }
}

/// Smoothed goodput/RTT/loss for one striped channel.
#[derive(Debug, Clone)]
pub struct ChannelEstimator {
    goodput: Ewma,
    loss: Ewma,
    /// Jacobson state, in nanoseconds.
    srtt_ns: f64,
    rttvar_ns: f64,
    rtt_primed: bool,
    /// Previous cumulative evidence sample and its timestamp.
    last: Option<(u64, TxEvidence)>,
    /// The probe in flight: (nonce, sent-at ns). Probes are serialized
    /// per channel, so one slot is enough; a newer probe overwrites an
    /// unanswered older one (whose ack, if it ever lands, is ignored).
    probe: Option<(u64, u64)>,
    tx_samples: u64,
    rtt_samples: u64,
}

impl Default for ChannelEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_GAIN)
    }
}

impl ChannelEstimator {
    /// An estimator with the given EWMA gain for goodput and loss.
    pub fn new(gain: f64) -> Self {
        Self {
            goodput: Ewma::new(gain),
            loss: Ewma::new(gain),
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rtt_primed: false,
            last: None,
            probe: None,
            tx_samples: 0,
            rtt_samples: 0,
        }
    }

    /// Feed one cumulative evidence sample taken at `now_ns`. The
    /// first sample only anchors the window; each later one blends the
    /// window's byte rate and drop fraction into the averages. A
    /// counter regression (a link incarnation that lost its counters)
    /// re-anchors instead of producing a garbage negative delta.
    pub fn on_tx_sample(&mut self, now_ns: u64, ev: TxEvidence) {
        let Some((then_ns, prev)) = self.last else {
            self.last = Some((now_ns, ev));
            return;
        };
        if ev.bytes < prev.bytes || ev.frames < prev.frames || ev.dropped < prev.dropped {
            self.last = Some((now_ns, ev));
            return;
        }
        let dt_ns = now_ns.saturating_sub(then_ns);
        if dt_ns == 0 {
            return;
        }
        let dbytes = ev.bytes - prev.bytes;
        let dframes = ev.frames - prev.frames;
        let ddropped = ev.dropped - prev.dropped;
        self.goodput.sample(dbytes as f64 * 1e9 / dt_ns as f64);
        let offered = dframes + ddropped;
        if offered > 0 {
            self.loss.sample(ddropped as f64 / offered as f64);
        }
        self.last = Some((now_ns, ev));
        self.tx_samples += 1;
    }

    /// Record a liveness probe leaving at `now_ns` carrying `nonce`.
    pub fn on_probe_sent(&mut self, nonce: u64, now_ns: u64) {
        self.probe = Some((nonce, now_ns));
    }

    /// Record a probe ack arriving at `now_ns`. Only the outstanding
    /// nonce produces an RTT sample (Karn's rule falls out for free:
    /// a retransmitted probe has a new nonce, so a stale ack cannot
    /// alias onto the wrong send time).
    pub fn on_probe_ack(&mut self, nonce: u64, now_ns: u64) {
        let Some((want, sent_ns)) = self.probe else {
            return;
        };
        if nonce != want {
            return;
        }
        self.probe = None;
        let s = now_ns.saturating_sub(sent_ns) as f64;
        if self.rtt_primed {
            // Jacobson/Karels: g = 1/8, h = 1/4.
            self.rttvar_ns += 0.25 * ((s - self.srtt_ns).abs() - self.rttvar_ns);
            self.srtt_ns += 0.125 * (s - self.srtt_ns);
        } else {
            self.srtt_ns = s;
            self.rttvar_ns = s / 2.0;
            self.rtt_primed = true;
        }
        self.rtt_samples += 1;
    }

    /// Smoothed carried-byte rate in bytes/second (0.0 until two
    /// evidence samples have landed).
    pub fn goodput_bps(&self) -> f64 {
        self.goodput.get()
    }

    /// Smoothed local-drop fraction in `[0, 1]`.
    pub fn loss_rate(&self) -> f64 {
        self.loss.get()
    }

    /// Smoothed RTT in nanoseconds, once a probe ack has been paired.
    pub fn srtt_ns(&self) -> Option<u64> {
        self.rtt_primed.then_some(self.srtt_ns as u64)
    }

    /// RTT variance in nanoseconds (Jacobson's `rttvar`).
    pub fn rttvar_ns(&self) -> Option<u64> {
        self.rtt_primed.then_some(self.rttvar_ns as u64)
    }

    /// Whether the goodput average has at least one blended window.
    pub fn primed(&self) -> bool {
        self.goodput.primed()
    }

    /// Evidence windows blended so far.
    pub fn tx_samples(&self) -> u64 {
        self.tx_samples
    }

    /// Probe RTT samples blended so far.
    pub fn rtt_samples(&self) -> u64 {
        self.rtt_samples
    }
}

/// Normalize per-channel goodput estimates into shares summing to 1.0,
/// writing into `out` (cleared). Channels with unprimed or zero
/// estimates get an equal split of whatever is unknown — so a cold
/// start proposes equal shares rather than starving anyone.
pub fn rate_shares(ests: &[ChannelEstimator], out: &mut Vec<f64>) {
    out.clear();
    let total: f64 = ests.iter().map(|e| e.goodput_bps().max(0.0)).sum();
    if total <= 0.0 {
        let n = ests.len().max(1);
        out.extend(std::iter::repeat_n(1.0 / n as f64, ests.len()));
        return;
    }
    out.extend(ests.iter().map(|e| e.goodput_bps().max(0.0) / total));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(frames: u64, bytes: u64, dropped: u64) -> TxEvidence {
        TxEvidence {
            frames,
            bytes,
            dropped,
        }
    }

    #[test]
    fn goodput_converges_to_constant_rate() {
        let mut e = ChannelEstimator::default();
        // 1000 bytes every millisecond = 1e6 bytes/s.
        for i in 0..50u64 {
            e.on_tx_sample(i * 1_000_000, ev(i, i * 1000, 0));
        }
        let bps = e.goodput_bps();
        assert!(
            (bps - 1e6).abs() < 1e-3,
            "constant-rate evidence must converge exactly: {bps}"
        );
        assert_eq!(e.loss_rate(), 0.0);
    }

    #[test]
    fn shares_recover_a_4_2_1_split() {
        let mut ests = vec![ChannelEstimator::default(); 3];
        let caps = [4000u64, 2000, 1000];
        for i in 0..100u64 {
            for (e, &cap) in ests.iter_mut().zip(&caps) {
                e.on_tx_sample(i * 1_000_000, ev(i, i * cap, 0));
            }
        }
        let mut shares = Vec::new();
        rate_shares(&ests, &mut shares);
        let want = [4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0];
        for (got, want) in shares.iter().zip(want) {
            assert!((got - want).abs() < 1e-6, "shares {shares:?}");
        }
    }

    #[test]
    fn rate_change_tracks_within_a_few_windows() {
        let mut e = ChannelEstimator::new(0.25);
        let mut bytes = 0u64;
        for i in 0..20u64 {
            bytes += 1000;
            e.on_tx_sample(i * 1_000_000, ev(i, bytes, 0));
        }
        // Capacity halves.
        for i in 20..60u64 {
            bytes += 500;
            e.on_tx_sample(i * 1_000_000, ev(i, bytes, 0));
        }
        let bps = e.goodput_bps();
        assert!(
            (bps - 5e5).abs() / 5e5 < 0.01,
            "estimate must track the new rate: {bps}"
        );
    }

    #[test]
    fn loss_fraction_tracks_drop_share() {
        let mut e = ChannelEstimator::default();
        // Every window: 3 carried, 1 dropped → 25% loss.
        for i in 0..50u64 {
            e.on_tx_sample(i * 1_000_000, ev(3 * i, 3000 * i, i));
        }
        assert!((e.loss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn counter_regression_reanchors_instead_of_exploding() {
        let mut e = ChannelEstimator::default();
        e.on_tx_sample(0, ev(10, 10_000, 0));
        e.on_tx_sample(1_000_000, ev(20, 20_000, 0));
        let before = e.goodput_bps();
        // A rebuilt incarnation that lost its counters.
        e.on_tx_sample(2_000_000, ev(1, 1000, 0));
        assert_eq!(e.goodput_bps(), before, "regression must not sample");
        e.on_tx_sample(3_000_000, ev(2, 2000, 0));
        assert!(e.goodput_bps() > 0.0);
    }

    #[test]
    fn rtt_pairs_only_the_outstanding_nonce() {
        let mut e = ChannelEstimator::default();
        e.on_probe_sent(7, 1_000);
        e.on_probe_ack(99, 5_000); // stale/foreign ack: ignored
        assert_eq!(e.srtt_ns(), None);
        e.on_probe_ack(7, 11_000);
        assert_eq!(e.srtt_ns(), Some(10_000));
        assert_eq!(e.rttvar_ns(), Some(5_000));
        // A second ack for the same nonce is not double-counted.
        e.on_probe_ack(7, 50_000);
        assert_eq!(e.rtt_samples(), 1);
    }

    #[test]
    fn jacobson_smooths_toward_new_rtt() {
        let mut e = ChannelEstimator::default();
        for i in 0..64u64 {
            e.on_probe_sent(i, i * 1_000_000);
            e.on_probe_ack(i, i * 1_000_000 + 2_000_000);
        }
        let srtt = e.srtt_ns().unwrap();
        assert!(
            (srtt as i64 - 2_000_000).abs() < 1_000,
            "constant RTT must converge: {srtt}"
        );
        assert!(e.rttvar_ns().unwrap() < 100_000);
    }

    #[test]
    fn cold_start_shares_are_equal() {
        let ests = vec![ChannelEstimator::default(); 4];
        let mut shares = Vec::new();
        rate_shares(&ests, &mut shares);
        assert_eq!(shares, vec![0.25; 4]);
    }
}
