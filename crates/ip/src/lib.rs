//! # stripe-ip
//!
//! The strIPe architecture of §6.1: transparent IP striping over multiple
//! data-link interfaces.
//!
//! The paper's framework inserts a *virtual IP interface* — the strIPe
//! layer — between IP and the real data-link interfaces to be striped
//! over. Striping is invisible to IP and everything above it:
//!
//! - **outbound**: host-specific routes for each of the receiver's
//!   per-interface addresses point at the strIPe interface (host routes
//!   override network routes, which is ordinary longest-prefix matching);
//!   the strIPe layer runs the SRR striping algorithm and emits frames on
//!   the member interfaces with a dedicated link-layer codepoint;
//! - **inbound**: the data links demultiplex on that codepoint and hand
//!   striped frames to the strIPe layer, which resequences them by logical
//!   reception before injecting them into normal IP input;
//! - the strIPe interface's MTU is clamped to the minimum member MTU.
//!
//! Modules: [`header`] (an RFC 791-faithful IPv4 header codec),
//! [`route`] (longest-prefix-match routing table), [`neighbor`] (ARP-like
//! address resolution, the "convergence layer" function), and
//! [`stripe_if`] (the virtual interface itself plus a two-host harness).

#![warn(missing_docs)]

pub mod frag;
pub mod header;
pub mod neighbor;
pub mod node;
pub mod route;
pub mod stripe_if;

pub use frag::{fragment, Fragment, Reassembler};
pub use header::Ipv4Header;
pub use neighbor::NeighborTable;
pub use node::{IpNode, PlainInterface};
pub use route::{Route, RouteTarget, RoutingTable};
pub use stripe_if::{StripeInterface, StripeRxInterface};
