//! ARP-like neighbor resolution — the convergence-layer duty of §6.1.
//!
//! "The convergence layer is responsible for mapping IP addresses to data
//! link addresses, and encapsulating the IP packet in a data link frame.
//! For example, for Ethernet interfaces, the convergence layer performs
//! ARP." The strIPe layer *is* such a convergence layer, so it needs this
//! mapping per member interface.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use stripe_link::eth::MacAddr;

/// The outcome of an outbound resolution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Known mapping: frame can be sent to this MAC now.
    Resolved(MacAddr),
    /// Unknown: an ARP request must be broadcast; the packet should be
    /// parked until the reply installs the mapping.
    NeedsRequest,
}

/// A per-interface neighbor (ARP) table.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    entries: HashMap<Ipv4Addr, MacAddr>,
    /// Addresses with an outstanding request (suppress duplicates).
    pending: HashMap<Ipv4Addr, u32>,
    requests_sent: u64,
}

impl NeighborTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statically install a mapping (a configured or learned entry).
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, mac);
        self.pending.remove(&ip);
    }

    /// Resolve `ip` for transmission. A `NeedsRequest` result also marks
    /// the address pending so repeated lookups do not flood requests;
    /// callers should broadcast a request only when this returns
    /// `NeedsRequest`.
    pub fn resolve(&mut self, ip: Ipv4Addr) -> Resolution {
        if let Some(mac) = self.entries.get(&ip) {
            return Resolution::Resolved(*mac);
        }
        let count = self.pending.entry(ip).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.requests_sent += 1;
            Resolution::NeedsRequest
        } else {
            // Request already outstanding: park quietly.
            Resolution::NeedsRequest
        }
    }

    /// Handle an ARP reply (or a gratuitous announcement).
    pub fn on_reply(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.insert(ip, mac);
    }

    /// Whether a request for `ip` is outstanding.
    pub fn is_pending(&self, ip: Ipv4Addr) -> bool {
        self.pending.contains_key(&ip)
    }

    /// Requests broadcast so far.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Known mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no mappings are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    const MAC_B: MacAddr = [0, 1, 2, 3, 4, 5];

    #[test]
    fn static_entry_resolves() {
        let mut t = NeighborTable::new();
        t.insert(ip("10.0.0.2"), MAC_B);
        assert_eq!(t.resolve(ip("10.0.0.2")), Resolution::Resolved(MAC_B));
        assert_eq!(t.requests_sent(), 0);
    }

    #[test]
    fn unknown_address_needs_one_request() {
        let mut t = NeighborTable::new();
        assert_eq!(t.resolve(ip("10.0.0.9")), Resolution::NeedsRequest);
        // Further lookups while pending do not multiply requests.
        assert_eq!(t.resolve(ip("10.0.0.9")), Resolution::NeedsRequest);
        assert_eq!(t.requests_sent(), 1);
        assert!(t.is_pending(ip("10.0.0.9")));
    }

    #[test]
    fn reply_installs_and_clears_pending() {
        let mut t = NeighborTable::new();
        t.resolve(ip("10.0.0.9"));
        t.on_reply(ip("10.0.0.9"), MAC_B);
        assert!(!t.is_pending(ip("10.0.0.9")));
        assert_eq!(t.resolve(ip("10.0.0.9")), Resolution::Resolved(MAC_B));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
