//! A simulated IP host: interfaces, routing, neighbor resolution, and the
//! strIPe layer, assembled the way §6.1's NetBSD hosts were.
//!
//! [`IpNode`] is the library form of what the `ip_stripe` example wires by
//! hand: IP output consults the routing table (host routes override via
//! LPM), resolves the next hop per interface through the convergence
//! layer, and either emits a plain frame on one interface or hands the
//! packet to the strIPe group. Inbound frames demultiplex by codepoint —
//! striped traffic through logical reception, everything else straight to
//! IP input.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use bytes::Bytes;
use stripe_core::sender::MarkerConfig;
use stripe_link::eth::{EtherFrame, EtherType, MacAddr};
use stripe_link::{EthLink, FifoLink};
use stripe_netsim::SimTime;

use crate::header::Ipv4Header;
use crate::neighbor::{NeighborTable, Resolution};
use crate::route::{RouteTarget, RoutingTable};
use crate::stripe_if::{FrameTx, Member, StripeInterface, StripeRxInterface, StripedIpPacket};

/// A plain (non-striped) interface: link + addressing + ARP state.
#[derive(Debug)]
pub struct PlainInterface {
    /// The physical link.
    pub link: EthLink,
    /// Our MAC.
    pub mac: MacAddr,
    /// Our IP on this network.
    pub addr: Ipv4Addr,
    /// Convergence-layer neighbor table.
    pub neighbors: NeighborTable,
    /// Packets parked awaiting ARP resolution.
    pending: VecDeque<(Ipv4Addr, StripedIpPacket)>,
}

impl PlainInterface {
    /// A plain interface with the given link and addressing.
    pub fn new(link: EthLink, mac: MacAddr, addr: Ipv4Addr) -> Self {
        Self {
            link,
            mac,
            addr,
            neighbors: NeighborTable::new(),
            pending: VecDeque::new(),
        }
    }
}

/// Everything a node can emit in response to one output/input call.
#[derive(Debug, Default)]
pub struct NodeOutput {
    /// Frames transmitted on plain interfaces: `(interface index, frame,
    /// arrival time if delivered)`.
    pub plain: Vec<(usize, EtherFrame, Option<SimTime>)>,
    /// Frames transmitted by the strIPe group.
    pub striped: Vec<FrameTx>,
    /// IP packets delivered locally (inbound path).
    pub delivered: Vec<(Ipv4Header, StripedIpPacket)>,
}

/// A host with plain interfaces and one optional strIPe group.
#[derive(Debug)]
pub struct IpNode {
    /// Plain interfaces, indexed by `RouteTarget::Interface`.
    pub interfaces: Vec<PlainInterface>,
    /// The strIPe group (`RouteTarget::Stripe(0)`), if configured.
    pub stripe: Option<StripeInterface>,
    /// Inbound resequencer for the strIPe group.
    pub stripe_rx: Option<StripeRxInterface>,
    /// The routing table.
    pub routes: RoutingTable,
    /// Packets dropped for lack of a route.
    pub no_route_drops: u64,
}

impl IpNode {
    /// A node with the given plain interfaces and routing table.
    pub fn new(interfaces: Vec<PlainInterface>, routes: RoutingTable) -> Self {
        Self {
            interfaces,
            stripe: None,
            stripe_rx: None,
            routes,
            no_route_drops: 0,
        }
    }

    /// Attach a strIPe group (and its receiver half, for symmetric nodes).
    pub fn attach_stripe(&mut self, members: Vec<Member>, marker_cfg: MarkerConfig) {
        let stripe = StripeInterface::new(members, marker_cfg);
        self.stripe_rx = Some(stripe.make_receiver(4096));
        self.stripe = Some(stripe);
    }

    /// IP output: route `packet` (whose header is already encoded in its
    /// bytes) toward `dst` at time `now`.
    pub fn output(&mut self, now: SimTime, dst: Ipv4Addr, packet: StripedIpPacket) -> NodeOutput {
        let mut out = NodeOutput::default();
        match self.routes.lookup(dst) {
            None => self.no_route_drops += 1,
            Some(RouteTarget::Stripe(_)) => {
                if let Some(stripe) = self.stripe.as_mut() {
                    out.striped = stripe.output(now, packet);
                } else {
                    self.no_route_drops += 1;
                }
            }
            Some(RouteTarget::Interface(i)) => {
                let ifc = &mut self.interfaces[i];
                match ifc.neighbors.resolve(dst) {
                    Resolution::Resolved(mac) => {
                        let frame = EtherFrame {
                            dst: mac,
                            src: ifc.mac,
                            ethertype: EtherType::Ipv4,
                            payload: packet.bytes,
                        };
                        let arrival = ifc.link.transmit(now, 14 + frame.payload.len()).ok();
                        out.plain.push((i, frame, arrival));
                    }
                    Resolution::NeedsRequest => {
                        // Park the packet and broadcast a request.
                        ifc.pending.push_back((dst, packet));
                        let req = EtherFrame {
                            dst: [0xFF; 6],
                            src: ifc.mac,
                            ethertype: EtherType::Arp,
                            payload: Bytes::copy_from_slice(&dst.octets()),
                        };
                        let arrival = ifc.link.transmit(now, 14 + 4).ok();
                        out.plain.push((i, req, arrival));
                    }
                }
            }
        }
        out
    }

    /// An ARP reply arrived on interface `i`: install the mapping and
    /// flush any parked packets toward it.
    pub fn on_arp_reply(
        &mut self,
        now: SimTime,
        i: usize,
        ip: Ipv4Addr,
        mac: MacAddr,
    ) -> NodeOutput {
        let mut out = NodeOutput::default();
        self.interfaces[i].neighbors.on_reply(ip, mac);
        let parked: Vec<(Ipv4Addr, StripedIpPacket)> =
            std::mem::take(&mut self.interfaces[i].pending)
                .into_iter()
                .collect();
        for (dst, pkt) in parked {
            if dst == ip {
                let sub = self.output(now, dst, pkt);
                out.plain.extend(sub.plain);
                out.striped.extend(sub.striped);
            } else {
                self.interfaces[i].pending.push_back((dst, pkt));
            }
        }
        out
    }

    /// A frame physically arrived on strIPe member channel `c`.
    pub fn stripe_input(&mut self, c: usize, frame: EtherFrame) -> NodeOutput {
        let mut out = NodeOutput::default();
        if let Some(rx) = self.stripe_rx.as_mut() {
            match rx.input(c, frame) {
                Ok(()) => {
                    while let Some((h, p)) = rx.poll() {
                        out.delivered.push((h, p));
                    }
                }
                Err(frame) => {
                    // Not striped traffic: normal IP input.
                    if frame.ethertype == EtherType::Ipv4 {
                        if let Some(h) = Ipv4Header::decode(&frame.payload) {
                            out.delivered.push((
                                h,
                                StripedIpPacket {
                                    bytes: frame.payload,
                                },
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// A frame arrived on plain interface `i`.
    pub fn plain_input(&mut self, _i: usize, frame: EtherFrame) -> NodeOutput {
        let mut out = NodeOutput::default();
        if frame.ethertype == EtherType::Ipv4 {
            if let Some(h) = Ipv4Header::decode(&frame.payload) {
                out.delivered.push((
                    h,
                    StripedIpPacket {
                        bytes: frame.payload,
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::proto;
    use bytes::{BufMut, BytesMut};
    use stripe_link::loss::LossModel;
    use stripe_netsim::{Bandwidth, EventQueue, SimDuration};

    const MAC_A0: MacAddr = [0xA, 0, 0, 0, 0, 0];
    const MAC_A1: MacAddr = [0xA, 0, 0, 0, 0, 1];
    const MAC_B0: MacAddr = [0xB, 0, 0, 0, 0, 0];
    const MAC_B1: MacAddr = [0xB, 0, 0, 0, 0, 1];
    const MAC_C: MacAddr = [0xC, 0, 0, 0, 0, 0];

    fn eth(seed: u64) -> EthLink {
        EthLink::new(
            Bandwidth::mbps(10),
            SimDuration::from_micros(100),
            SimDuration::from_micros(20),
            LossModel::None,
            seed,
        )
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn packet(ident: u16, dst: Ipv4Addr, len: usize) -> StripedIpPacket {
        let h = Ipv4Header {
            total_len: (20 + len) as u16,
            ident,
            ttl: 64,
            protocol: proto::UDP,
            src: ip("10.1.0.1"),
            dst,
        };
        let mut b = BytesMut::new();
        b.put_slice(&h.encode());
        b.put_bytes(0xEE, len);
        StripedIpPacket { bytes: b.freeze() }
    }

    fn node_a() -> IpNode {
        let mut routes = RoutingTable::new();
        routes.add(ip("10.1.0.0"), 24, RouteTarget::Interface(0));
        routes.add(ip("10.2.0.0"), 24, RouteTarget::Interface(1));
        routes.add_host(ip("10.1.0.2"), RouteTarget::Stripe(0));
        routes.add_host(ip("10.2.0.2"), RouteTarget::Stripe(0));
        let mut n = IpNode::new(
            vec![
                PlainInterface::new(eth(1), MAC_A0, ip("10.1.0.1")),
                PlainInterface::new(eth(2), MAC_A1, ip("10.2.0.1")),
            ],
            routes,
        );
        n.attach_stripe(
            vec![
                Member {
                    link: eth(3),
                    local_mac: MAC_A0,
                    peer_mac: MAC_B0,
                },
                Member {
                    link: eth(4),
                    local_mac: MAC_A1,
                    peer_mac: MAC_B1,
                },
            ],
            MarkerConfig::every_rounds(8),
        );
        n
    }

    /// The full two-node path: A stripes to B's addresses, B resequences
    /// and delivers in order; plain traffic to a third host goes out one
    /// interface after ARP.
    #[test]
    fn end_to_end_node_striping() {
        let mut a = node_a();
        let mut b = node_a(); // same shape; only its stripe_rx is used
        let mut q: EventQueue<(usize, EtherFrame)> = EventQueue::new();
        let mut now = SimTime::ZERO;
        for i in 0..300u16 {
            now += SimDuration::from_micros(1400);
            let out = a.output(now, ip("10.1.0.2"), packet(i, ip("10.1.0.2"), 400));
            assert!(out.plain.is_empty());
            for ftx in out.striped {
                if let Some(at) = ftx.arrival {
                    q.push(at, (ftx.channel, ftx.frame));
                }
            }
        }
        let mut idents = Vec::new();
        while let Some((_, (c, frame))) = q.pop() {
            for (h, _) in b.stripe_input(c, frame).delivered {
                idents.push(h.ident);
            }
        }
        assert_eq!(idents, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn arp_parks_and_flushes() {
        let mut a = node_a();
        let dst = ip("10.1.0.99");
        let out = a.output(SimTime::ZERO, dst, packet(7, dst, 100));
        // First output is the ARP request, not the data.
        assert_eq!(out.plain.len(), 1);
        assert_eq!(out.plain[0].1.ethertype, EtherType::Arp);
        // Reply arrives: the parked packet flushes as IPv4.
        let out2 = a.on_arp_reply(SimTime::from_micros(500), 0, dst, MAC_C);
        assert_eq!(out2.plain.len(), 1);
        assert_eq!(out2.plain[0].1.ethertype, EtherType::Ipv4);
        assert_eq!(out2.plain[0].1.dst, MAC_C);
    }

    #[test]
    fn unroutable_is_counted() {
        let mut a = node_a();
        let dst = ip("192.168.9.9");
        let out = a.output(SimTime::ZERO, dst, packet(1, dst, 100));
        assert!(out.plain.is_empty() && out.striped.is_empty());
        assert_eq!(a.no_route_drops, 1);
    }

    #[test]
    fn plain_input_delivers_valid_ip_only() {
        let mut a = node_a();
        let good = EtherFrame {
            dst: MAC_A0,
            src: MAC_C,
            ethertype: EtherType::Ipv4,
            payload: packet(3, ip("10.1.0.1"), 64).bytes,
        };
        assert_eq!(a.plain_input(0, good).delivered.len(), 1);
        let junk = EtherFrame {
            dst: MAC_A0,
            src: MAC_C,
            ethertype: EtherType::Ipv4,
            payload: Bytes::from_static(b"not an ip packet at all....."),
        };
        assert!(a.plain_input(0, junk).delivered.is_empty());
    }
}
