//! IPv4 fragmentation and reassembly — the "differing MTU sizes" subtlety
//! §6.1 defers.
//!
//! strIPe clamps the virtual interface's MTU to the minimum member MTU,
//! which §6.2 shows costs real throughput when one member could carry
//! 8 KB packets. The alternative the paper alludes to ("any striping
//! algorithm that does not internally fragment and reassemble packets")
//! is IP fragmentation: let IP send large packets and fragment them to
//! each member's MTU. This module implements RFC 791 fragmentation so the
//! `mtu_ablation` bench can quantify the trade:
//!
//! - fragmentation recovers the large-MTU member's efficiency, but
//! - every fragment loss kills the whole packet (the classic
//!   fragmentation fragility), and reassembly needs per-ident buffers.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;

use crate::header::{Ipv4Header, IPV4_HEADER_LEN};

/// One IP fragment: a real header (with offset/MF encoded in the payload
/// model below) plus its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Packet identification (shared by all fragments of one packet).
    pub ident: u16,
    /// Fragment offset in 8-byte units, per RFC 791.
    pub offset_units: u16,
    /// More-fragments flag.
    pub more: bool,
    /// Fragment payload (transport bytes, no IP header).
    pub payload: Bytes,
}

impl Fragment {
    /// Byte offset within the original payload.
    pub fn offset(&self) -> usize {
        self.offset_units as usize * 8
    }

    /// Wire length: header + payload.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }
}

/// Split a packet's transport payload into fragments that fit `mtu`
/// (header included). Offsets are in 8-byte units, so every fragment
/// except the last carries a multiple of 8 payload bytes.
///
/// # Panics
/// Panics if `mtu` cannot carry the header plus at least 8 payload bytes.
pub fn fragment(ident: u16, payload: &[u8], mtu: usize) -> Vec<Fragment> {
    assert!(
        mtu >= IPV4_HEADER_LEN + 8,
        "mtu {mtu} cannot carry a fragment"
    );
    let max_frag_payload = ((mtu - IPV4_HEADER_LEN) / 8) * 8;
    if payload.len() + IPV4_HEADER_LEN <= mtu {
        return vec![Fragment {
            ident,
            offset_units: 0,
            more: false,
            payload: Bytes::copy_from_slice(payload),
        }];
    }
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < payload.len() {
        let remaining = payload.len() - off;
        let take = remaining.min(max_frag_payload);
        let more = off + take < payload.len();
        out.push(Fragment {
            ident,
            offset_units: (off / 8) as u16,
            more,
            payload: Bytes::copy_from_slice(&payload[off..off + take]),
        });
        off += take;
    }
    out
}

/// Reassembly outcome for one arriving fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyEvent {
    /// Fragment absorbed; packet still incomplete.
    Pending,
    /// The packet is complete: here is its full payload.
    Complete(Bytes),
    /// The fragment was discarded (overlap/duplicate or table pressure).
    Discarded,
}

/// A bounded reassembly table.
///
/// Packets are evicted least-recently-touched when more than
/// `max_packets` are simultaneously incomplete — the count-based stand-in
/// for the reassembly timer, keeping simulations deterministic.
#[derive(Debug)]
pub struct Reassembler {
    max_packets: usize,
    table: HashMap<u16, PartialPacket>,
    /// Monotone touch counter for LRU eviction.
    clock: u64,
    completed: u64,
    evicted: u64,
}

#[derive(Debug)]
struct PartialPacket {
    /// (offset, payload) pieces, non-overlapping, sorted on completion.
    pieces: Vec<(usize, Bytes)>,
    /// Total payload length, known once the last fragment (more=false)
    /// arrives.
    total_len: Option<usize>,
    received: usize,
    last_touch: u64,
}

impl Reassembler {
    /// A table holding at most `max_packets` incomplete packets.
    ///
    /// # Panics
    /// Panics if `max_packets == 0`.
    pub fn new(max_packets: usize) -> Self {
        assert!(max_packets > 0);
        Self {
            max_packets,
            table: HashMap::new(),
            clock: 0,
            completed: 0,
            evicted: 0,
        }
    }

    /// Absorb one fragment.
    pub fn push(&mut self, f: Fragment) -> ReassemblyEvent {
        self.clock += 1;
        let entry = self.table.entry(f.ident).or_insert(PartialPacket {
            pieces: Vec::new(),
            total_len: None,
            received: 0,
            last_touch: 0,
        });
        entry.last_touch = self.clock;

        let off = f.offset();
        // Reject duplicates/overlaps (simplified: exact-duplicate and any
        // overlap are both discarded; correct reassembly never needs them).
        let end = off + f.payload.len();
        if entry
            .pieces
            .iter()
            .any(|(o, p)| off < o + p.len() && *o < end)
        {
            return ReassemblyEvent::Discarded;
        }
        if !f.more {
            entry.total_len = Some(end);
        }
        entry.received += f.payload.len();
        entry.pieces.push((off, f.payload));

        if entry.total_len == Some(entry.received) {
            // All bytes present and contiguous by construction.
            let mut entry = self.table.remove(&f.ident).expect("present");
            entry.pieces.sort_by_key(|&(o, _)| o);
            let mut buf = BytesMut::with_capacity(entry.received);
            for (_, p) in entry.pieces {
                buf.put_slice(&p);
            }
            self.completed += 1;
            return ReassemblyEvent::Complete(buf.freeze());
        }

        // Table pressure: evict the stalest incomplete packet.
        if self.table.len() > self.max_packets {
            let stalest = self
                .table
                .iter()
                .min_by_key(|(_, p)| p.last_touch)
                .map(|(&id, _)| id)
                .expect("non-empty");
            self.table.remove(&stalest);
            self.evicted += 1;
        }
        ReassemblyEvent::Pending
    }

    /// Packets fully reassembled.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Incomplete packets evicted (fragment loss, in effect).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Incomplete packets currently held.
    pub fn pending(&self) -> usize {
        self.table.len()
    }
}

/// Convenience: encode a full IP packet (header + payload) for one
/// fragment, producing real wire bytes with correct offset/MF fields.
pub fn encode_fragment(h: &Ipv4Header, f: &Fragment) -> Bytes {
    // Encode the base header, then patch length, flags/offset, checksum.
    let mut hdr = Ipv4Header {
        total_len: (IPV4_HEADER_LEN + f.payload.len()) as u16,
        ident: f.ident,
        ..*h
    }
    .encode()
    .to_vec();
    let flags_frag: u16 = (if f.more { 0x2000 } else { 0 }) | (f.offset_units & 0x1FFF);
    hdr[6..8].copy_from_slice(&flags_frag.to_be_bytes());
    // Re-checksum after patching.
    hdr[10] = 0;
    hdr[11] = 0;
    let sum = crate::header::checksum(&hdr);
    hdr[10..12].copy_from_slice(&sum.to_be_bytes());
    let mut b = BytesMut::with_capacity(hdr.len() + f.payload.len());
    b.put_slice(&hdr);
    b.put_slice(&f.payload);
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31) as u8).collect()
    }

    #[test]
    fn small_packet_is_one_fragment() {
        let p = payload(100);
        let frags = fragment(1, &p, 1500);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].more);
        assert_eq!(frags[0].payload, &p[..]);
    }

    #[test]
    fn offsets_are_eight_byte_aligned() {
        let p = payload(8000);
        let frags = fragment(2, &p, 1500);
        assert!(frags.len() >= 6);
        for f in &frags[..frags.len() - 1] {
            assert_eq!(f.payload.len() % 8, 0);
            assert!(f.more);
            assert!(f.wire_len() <= 1500);
        }
        assert!(!frags.last().unwrap().more);
        // Coverage is exact and contiguous.
        let mut expected_off = 0;
        for f in &frags {
            assert_eq!(f.offset(), expected_off);
            expected_off += f.payload.len();
        }
        assert_eq!(expected_off, 8000);
    }

    #[test]
    fn reassembly_roundtrip_in_order() {
        let p = payload(8000);
        let mut r = Reassembler::new(16);
        let frags = fragment(3, &p, 1500);
        let n = frags.len();
        for (i, f) in frags.into_iter().enumerate() {
            match r.push(f) {
                ReassemblyEvent::Complete(full) => {
                    assert_eq!(i, n - 1);
                    assert_eq!(&full[..], &p[..]);
                }
                ReassemblyEvent::Pending => assert!(i < n - 1),
                ReassemblyEvent::Discarded => panic!("discarded fragment {i}"),
            }
        }
        assert_eq!(r.completed(), 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_roundtrip_reversed_order() {
        let p = payload(5000);
        let mut r = Reassembler::new(16);
        let mut frags = fragment(4, &p, 1500);
        frags.reverse();
        let mut complete = None;
        for f in frags {
            if let ReassemblyEvent::Complete(full) = r.push(f) {
                complete = Some(full);
            }
        }
        assert_eq!(&complete.expect("completed")[..], &p[..]);
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let pa = payload(4000);
        let pb: Vec<u8> = payload(4000).iter().map(|b| b ^ 0xFF).collect();
        let fa = fragment(10, &pa, 1500);
        let fb = fragment(11, &pb, 1500);
        let mut r = Reassembler::new(16);
        let mut done = 0;
        for (a, b) in fa.into_iter().zip(fb) {
            for f in [a, b] {
                if let ReassemblyEvent::Complete(full) = r.push(f) {
                    done += 1;
                    assert_eq!(full.len(), 4000);
                }
            }
        }
        assert_eq!(done, 2);
    }

    #[test]
    fn duplicate_fragment_discarded() {
        let p = payload(3000);
        let frags = fragment(5, &p, 1500);
        let mut r = Reassembler::new(16);
        assert_eq!(r.push(frags[0].clone()), ReassemblyEvent::Pending);
        assert_eq!(r.push(frags[0].clone()), ReassemblyEvent::Discarded);
    }

    #[test]
    fn lost_fragment_leaves_packet_pending_until_evicted() {
        let mut r = Reassembler::new(2);
        // Three packets each missing a fragment: table overflows, stalest
        // evicted.
        for ident in 0..3u16 {
            let p = payload(3000);
            let frags = fragment(ident, &p, 1500);
            r.push(frags[0].clone()); // drop the rest
        }
        assert_eq!(r.evicted(), 1);
        assert_eq!(r.pending(), 2);
    }

    #[test]
    fn encoded_fragment_is_valid_ip() {
        let h = Ipv4Header {
            total_len: 0, // patched per fragment
            ident: 42,
            ttl: 64,
            protocol: crate::header::proto::UDP,
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.0.0.2".parse().unwrap(),
        };
        let p = payload(4000);
        for f in fragment(42, &p, 1500) {
            let wire = encode_fragment(&h, &f);
            // Header checksum verifies (decode ignores frag fields).
            assert!(
                Ipv4Header::decode(&wire).is_some(),
                "fragment header invalid"
            );
            assert!(wire.len() <= 1500);
        }
    }

    #[test]
    #[should_panic(expected = "cannot carry")]
    fn tiny_mtu_rejected() {
        let _ = fragment(1, &[0u8; 100], IPV4_HEADER_LEN + 4);
    }
}
