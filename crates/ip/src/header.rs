//! An RFC 791-faithful IPv4 header codec.
//!
//! strIPe never *modifies* data packets, but it does have to carry real IP
//! packets across the member links; the experiments and examples therefore
//! need an honest header with the ones'-complement checksum, so corruption
//! and verification behave like the real stack the paper embedded into.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Fixed IPv4 header length (no options), in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used by the experiments.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// A minimal-but-real IPv4 header (IHL fixed at 5, no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Total length: header + payload, in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol number (see [`proto`]).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Serialize with a correct checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(IPV4_HEADER_LEN);
        b.put_u8(0x45); // version 4, IHL 5
        b.put_u8(0); // DSCP/ECN
        b.put_u16(self.total_len);
        b.put_u16(self.ident);
        b.put_u16(0); // flags/fragment offset: never fragmented here
        b.put_u8(self.ttl);
        b.put_u8(self.protocol);
        b.put_u16(0); // checksum placeholder
        b.put_slice(&self.src.octets());
        b.put_slice(&self.dst.octets());
        let sum = checksum(&b);
        b[10..12].copy_from_slice(&sum.to_be_bytes());
        b.freeze()
    }

    /// Parse and verify. Returns `None` on short input, wrong version/IHL,
    /// or a bad checksum — the §5 assumption that corruption is detectable
    /// and the packet discarded.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < IPV4_HEADER_LEN || buf[0] != 0x45 {
            return None;
        }
        if checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return None;
        }
        Some(Self {
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        })
    }
}

/// The Internet checksum (RFC 1071): ones'-complement sum of 16-bit words.
/// Over a header whose checksum field is zero this yields the value to
/// store; over a header containing a correct checksum it yields zero.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header {
            total_len: 1500,
            ident: 0xBEEF,
            ttl: 64,
            protocol: proto::TCP,
            src: Ipv4Addr::new(10, 0, 1, 2),
            dst: Ipv4Addr::new(10, 0, 2, 2),
        }
    }

    #[test]
    fn roundtrip() {
        let h = hdr();
        assert_eq!(Ipv4Header::decode(&h.encode()), Some(h));
    }

    #[test]
    fn checksum_verifies_to_zero() {
        let enc = hdr().encode();
        assert_eq!(checksum(&enc), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let enc = hdr().encode();
        // Flip one bit anywhere: decode must fail.
        for byte in 0..IPV4_HEADER_LEN {
            let mut bad = enc.to_vec();
            bad[byte] ^= 0x04;
            assert_eq!(
                Ipv4Header::decode(&bad),
                None,
                "bit flip at {byte} undetected"
            );
        }
    }

    #[test]
    fn rejects_short_and_wrong_version() {
        assert_eq!(Ipv4Header::decode(&[0x45; 10]), None);
        let mut enc = hdr().encode().to_vec();
        enc[0] = 0x65; // IPv6 version nibble
        assert_eq!(Ipv4Header::decode(&enc), None);
    }

    #[test]
    fn rfc1071_example() {
        // The classic example sequence from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001+0xf203+0xf4f5+0xf6f7 = 0x2ddf0 -> 0xddf2 -> !0xddf2.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padding() {
        // Trailing byte is padded with zero per RFC 1071.
        assert_eq!(checksum(&[0xFF]), !0xFF00);
    }
}
