//! Longest-prefix-match routing — the mechanism strIPe rides on.
//!
//! §6.1: "it is possible for host specific routes to override network
//! specific routes. Thus, if the two ethernets are on IP networks Net1 and
//! Net2, and the receiving host's two IP addresses are Net1.B and Net2.B,
//! we simply make entries in the sending host's routing table, asking it to
//! route packets to Net1.B and Net2.B to interface C, the strIPe
//! interface." Host routes are just /32 prefixes, so ordinary LPM gives
//! the override for free.

use std::net::Ipv4Addr;

/// Where a route points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget {
    /// A real data-link interface, by index.
    Interface(usize),
    /// The strIPe virtual interface, by striping-group id.
    Stripe(usize),
}

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Network prefix.
    pub prefix: Ipv4Addr,
    /// Prefix length in bits (0..=32).
    pub len: u8,
    /// Outgoing target.
    pub target: RouteTarget,
}

impl Route {
    fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    fn matches(&self, addr: Ipv4Addr) -> bool {
        let a = u32::from(addr);
        let p = u32::from(self.prefix);
        (a & self.mask()) == (p & self.mask())
    }
}

/// A longest-prefix-match routing table.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: Vec<Route>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a network route.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn add(&mut self, prefix: Ipv4Addr, len: u8, target: RouteTarget) {
        assert!(len <= 32, "prefix length {len} > 32");
        self.routes.push(Route {
            prefix,
            len,
            target,
        });
    }

    /// Install a host (/32) route — the strIPe override of §6.1.
    pub fn add_host(&mut self, host: Ipv4Addr, target: RouteTarget) {
        self.add(host, 32, target);
    }

    /// Longest-prefix lookup. Ties on length resolve to the most recently
    /// installed route.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<RouteTarget> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.matches(dst))
            .max_by_key(|(i, r)| (r.len, *i))
            .map(|(_, r)| r.target)
    }

    /// Remove every route to the given target (interface teardown).
    pub fn remove_target(&mut self, target: RouteTarget) {
        self.routes.retain(|r| r.target != target);
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn network_route_matches_subnet() {
        let mut t = RoutingTable::new();
        t.add(ip("10.1.0.0"), 16, RouteTarget::Interface(0));
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(RouteTarget::Interface(0)));
        assert_eq!(t.lookup(ip("10.2.2.3")), None);
    }

    /// The §6.1 configuration: network routes to real interfaces, host
    /// routes to the strIPe interface; the host routes must win.
    #[test]
    fn host_routes_override_network_routes() {
        let mut t = RoutingTable::new();
        t.add(ip("10.1.0.0"), 24, RouteTarget::Interface(0)); // Net1
        t.add(ip("10.2.0.0"), 24, RouteTarget::Interface(1)); // Net2
        t.add_host(ip("10.1.0.2"), RouteTarget::Stripe(0)); // Net1.B
        t.add_host(ip("10.2.0.2"), RouteTarget::Stripe(0)); // Net2.B

        // The receiver's addresses go to the stripe group...
        assert_eq!(t.lookup(ip("10.1.0.2")), Some(RouteTarget::Stripe(0)));
        assert_eq!(t.lookup(ip("10.2.0.2")), Some(RouteTarget::Stripe(0)));
        // ...while other hosts on the same nets use the plain interfaces.
        assert_eq!(t.lookup(ip("10.1.0.7")), Some(RouteTarget::Interface(0)));
        assert_eq!(t.lookup(ip("10.2.0.9")), Some(RouteTarget::Interface(1)));
    }

    #[test]
    fn longest_prefix_wins_across_lengths() {
        let mut t = RoutingTable::new();
        t.add(ip("0.0.0.0"), 0, RouteTarget::Interface(9)); // default
        t.add(ip("10.0.0.0"), 8, RouteTarget::Interface(1));
        t.add(ip("10.1.0.0"), 16, RouteTarget::Interface(2));
        assert_eq!(t.lookup(ip("10.1.5.5")), Some(RouteTarget::Interface(2)));
        assert_eq!(t.lookup(ip("10.9.5.5")), Some(RouteTarget::Interface(1)));
        assert_eq!(t.lookup(ip("192.168.1.1")), Some(RouteTarget::Interface(9)));
    }

    #[test]
    fn equal_length_ties_prefer_newest() {
        let mut t = RoutingTable::new();
        t.add(ip("10.0.0.0"), 8, RouteTarget::Interface(1));
        t.add(ip("10.0.0.0"), 8, RouteTarget::Interface(2));
        assert_eq!(t.lookup(ip("10.3.4.5")), Some(RouteTarget::Interface(2)));
    }

    #[test]
    fn remove_target_uninstalls() {
        let mut t = RoutingTable::new();
        t.add(ip("10.0.0.0"), 8, RouteTarget::Interface(1));
        t.add_host(ip("10.0.0.2"), RouteTarget::Stripe(0));
        t.remove_target(RouteTarget::Stripe(0));
        assert_eq!(t.lookup(ip("10.0.0.2")), Some(RouteTarget::Interface(1)));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn oversized_prefix_rejected() {
        RoutingTable::new().add(ip("10.0.0.0"), 33, RouteTarget::Interface(0));
    }
}
