//! The strIPe virtual interface: IP in, striped link frames out — and the
//! reverse.
//!
//! Outbound, the interface is an IP convergence layer (§6.1): it
//! encapsulates each IP packet in a link frame whose *type field* is the
//! striped-data codepoint, picks the member interface with the SRR striping
//! algorithm, and periodically emits marker frames (marker codepoint) that
//! never touch data packets. Inbound, frames demultiplexed by codepoint are
//! resequenced by logical reception before entering IP input.

use bytes::Bytes;
use stripe_core::receiver::{Arrival, LogicalReceiver, ReceiverSnapshot};
use stripe_core::sched::Srr;
use stripe_core::sender::{MarkerConfig, StripingSender};
use stripe_core::types::{ChannelId, WireLen};
use stripe_core::Marker;
use stripe_link::eth::{EtherFrame, EtherType, MacAddr};
use stripe_link::{EthLink, FifoLink, TxError};
use stripe_netsim::SimTime;

use crate::header::Ipv4Header;

/// An encapsulated IP packet as carried across a member link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripedIpPacket {
    /// The full IP packet (header + payload).
    pub bytes: Bytes,
}

impl WireLen for StripedIpPacket {
    fn wire_len(&self) -> usize {
        self.bytes.len()
    }
}

/// One member of a striping group: the link plus the MACs the convergence
/// layer resolved for it.
#[derive(Debug)]
pub struct Member {
    /// The physical link.
    pub link: EthLink,
    /// Our MAC on this link.
    pub local_mac: MacAddr,
    /// The peer's MAC on this link (resolved via
    /// [`crate::neighbor::NeighborTable`] at configuration time).
    pub peer_mac: MacAddr,
}

/// A frame transmission produced by the interface.
#[derive(Debug, Clone)]
pub struct FrameTx {
    /// Member index the frame went out on.
    pub channel: ChannelId,
    /// Arrival time, or `None` if lost.
    pub arrival: Option<SimTime>,
    /// The frame itself (as the far end would receive it).
    pub frame: EtherFrame,
    /// Loss cause if lost.
    pub error: Option<TxError>,
}

/// Sending side of the strIPe virtual interface.
#[derive(Debug)]
pub struct StripeInterface {
    members: Vec<Member>,
    tx: StripingSender<Srr>,
    sent: u64,
    lost: u64,
}

impl StripeInterface {
    /// Build a striping group. The scheduler is SRR with quanta
    /// proportional to the member link rates (weighted SRR, §3.5), quantum
    /// scale = one MTU per 10 Mbps of rate, floored at one MTU.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Member>, marker_cfg: MarkerConfig) -> Self {
        assert!(!members.is_empty(), "need at least one member link");
        let mtu = members
            .iter()
            .map(|m| m.link.mtu())
            .min()
            .expect("non-empty") as i64;
        let quanta: Vec<i64> = members
            .iter()
            .map(|m| {
                let units = (m.link.rate().as_bps() / 10_000_000).max(1) as i64;
                units * mtu
            })
            .collect();
        let sched = Srr::weighted(&quanta);
        Self {
            members,
            tx: StripingSender::new(sched, marker_cfg),
            sent: 0,
            lost: 0,
        }
    }

    /// The interface MTU: minimum member MTU (§6.1).
    pub fn mtu(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.link.mtu())
            .min()
            .expect("non-empty")
    }

    /// A fresh receiver configured to simulate this sender. Must be created
    /// before any packet is sent (both ends start from `s0`).
    pub fn make_receiver(&self, buffer_per_channel: usize) -> StripeRxInterface {
        StripeRxInterface {
            rx: LogicalReceiver::new(self.tx.scheduler().clone(), buffer_per_channel),
        }
    }

    /// Stripe one IP packet (header already encoded into `packet`) at
    /// `now`. Returns the frames transmitted: the data frame first, then
    /// any due marker frames.
    ///
    /// # Panics
    /// Panics if the packet exceeds the interface MTU — IP must fragment
    /// or clamp to [`mtu`](Self::mtu) first, exactly as the paper requires.
    pub fn output(&mut self, now: SimTime, packet: StripedIpPacket) -> Vec<FrameTx> {
        assert!(
            packet.wire_len() <= self.mtu(),
            "packet {} exceeds strIPe MTU {}",
            packet.wire_len(),
            self.mtu()
        );
        let decision = self.tx.send(packet.wire_len());
        let mut out = Vec::with_capacity(1 + decision.markers.len());
        self.sent += 1;

        let frame = self.make_frame(
            decision.channel,
            EtherType::StripeData,
            packet.bytes.clone(),
        );
        out.push(self.transmit(now, decision.channel, frame));

        for (c, mk) in decision.markers {
            let frame = self.make_frame(
                c,
                EtherType::StripeMarker,
                Bytes::copy_from_slice(&mk.encode()),
            );
            out.push(self.transmit(now, c, frame));
        }
        out
    }

    fn make_frame(&self, c: ChannelId, ethertype: EtherType, payload: Bytes) -> EtherFrame {
        EtherFrame {
            dst: self.members[c].peer_mac,
            src: self.members[c].local_mac,
            ethertype,
            payload,
        }
    }

    fn transmit(&mut self, now: SimTime, c: ChannelId, frame: EtherFrame) -> FrameTx {
        let wire_len = 14 + frame.payload.len();
        let (arrival, error) = match self.members[c].link.transmit(now, wire_len) {
            Ok(t) => (Some(t), None),
            Err(e) => {
                self.lost += 1;
                (None, Some(e))
            }
        };
        FrameTx {
            channel: c,
            arrival,
            frame,
            error,
        }
    }

    /// IP packets handed to the interface so far.
    pub fn packets_sent(&self) -> u64 {
        self.sent
    }

    /// Frames lost (data + markers).
    pub fn frames_lost(&self) -> u64 {
        self.lost
    }

    /// The member links.
    pub fn members(&self) -> &[Member] {
        &self.members
    }
}

/// Receiving side: codepoint demux plus logical reception.
#[derive(Debug)]
pub struct StripeRxInterface {
    rx: LogicalReceiver<Srr, StripedIpPacket>,
}

impl StripeRxInterface {
    /// A frame physically arrived on member `channel`. Non-striped
    /// codepoints are returned to the caller untouched (`Err`) — they
    /// belong to normal IP input, not to the strIPe layer.
    pub fn input(&mut self, channel: ChannelId, frame: EtherFrame) -> Result<(), EtherFrame> {
        match frame.ethertype {
            EtherType::StripeData => {
                self.rx.push(
                    channel,
                    Arrival::Data(StripedIpPacket {
                        bytes: frame.payload,
                    }),
                );
                Ok(())
            }
            EtherType::StripeMarker => {
                // A corrupt marker is dropped like any corrupt packet.
                if let Some(mk) = Marker::decode(&frame.payload) {
                    self.rx.push(channel, Arrival::Marker(mk));
                }
                Ok(())
            }
            _ => Err(frame),
        }
    }

    /// Deliver the next in-order IP packet, parsed and checksum-verified.
    /// Packets whose header fails verification are silently dropped
    /// (detectable corruption, §5).
    pub fn poll(&mut self) -> Option<(Ipv4Header, StripedIpPacket)> {
        while let Some(pkt) = self.rx.poll() {
            if let Some(h) = Ipv4Header::decode(&pkt.bytes) {
                return Some((h, pkt));
            }
        }
        None
    }

    /// Resequencer counters.
    pub fn stats(&self) -> ReceiverSnapshot {
        self.rx.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::proto;
    use bytes::{BufMut, BytesMut};
    use std::net::Ipv4Addr;
    use stripe_link::loss::LossModel;
    use stripe_netsim::{Bandwidth, EventQueue, SimDuration};

    const MAC_A0: MacAddr = [0xA, 0, 0, 0, 0, 0];
    const MAC_A1: MacAddr = [0xA, 0, 0, 0, 0, 1];
    const MAC_B0: MacAddr = [0xB, 0, 0, 0, 0, 0];
    const MAC_B1: MacAddr = [0xB, 0, 0, 0, 0, 1];

    fn member(rate_mbps: u64, seed: u64, local: MacAddr, peer: MacAddr) -> Member {
        Member {
            link: EthLink::new(
                Bandwidth::mbps(rate_mbps),
                SimDuration::from_micros(100),
                SimDuration::from_micros(25),
                LossModel::None,
                seed,
            ),
            local_mac: local,
            peer_mac: peer,
        }
    }

    fn ip_packet(ident: u16, payload_len: usize) -> StripedIpPacket {
        let h = Ipv4Header {
            total_len: (20 + payload_len) as u16,
            ident,
            ttl: 64,
            protocol: proto::UDP,
            src: Ipv4Addr::new(10, 1, 0, 1),
            dst: Ipv4Addr::new(10, 1, 0, 2),
        };
        let mut b = BytesMut::new();
        b.put_slice(&h.encode());
        b.put_bytes(ident as u8, payload_len);
        StripedIpPacket { bytes: b.freeze() }
    }

    fn group() -> StripeInterface {
        StripeInterface::new(
            vec![member(10, 1, MAC_A0, MAC_B0), member(10, 2, MAC_A1, MAC_B1)],
            MarkerConfig::every_rounds(8),
        )
    }

    /// End-to-end: IP packets out one host's strIPe interface, frames over
    /// skewed links, resequenced and checksum-verified at the other —
    /// transparent FIFO delivery.
    #[test]
    fn transparent_fifo_ip_delivery() {
        let mut tx_if = group();
        let mut rx_if = tx_if.make_receiver(4096);
        let mut q: EventQueue<(usize, EtherFrame)> = EventQueue::new();

        let mut now = SimTime::ZERO;
        for i in 0..200u16 {
            now += SimDuration::from_micros(1400);
            for ftx in tx_if.output(now, ip_packet(i, 256 + (i as usize * 53) % 1000)) {
                if let Some(at) = ftx.arrival {
                    q.push(at, (ftx.channel, ftx.frame));
                }
            }
        }
        let mut idents = Vec::new();
        while let Some((_, (c, frame))) = q.pop() {
            assert!(rx_if.input(c, frame).is_ok());
            while let Some((h, _)) = rx_if.poll() {
                idents.push(h.ident);
            }
        }
        assert_eq!(idents, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn markers_use_their_own_codepoint_and_never_touch_data() {
        let mut tx_if = group();
        let mut data_frames = 0;
        let mut marker_frames = 0;
        let mut now = SimTime::ZERO;
        for i in 0..100u16 {
            now += SimDuration::from_micros(1500);
            for ftx in tx_if.output(now, ip_packet(i, 800)) {
                match ftx.frame.ethertype {
                    EtherType::StripeData => {
                        data_frames += 1;
                        // Data payload is the *unmodified* IP packet.
                        assert!(Ipv4Header::decode(&ftx.frame.payload).is_some());
                    }
                    EtherType::StripeMarker => {
                        marker_frames += 1;
                        assert!(Marker::decode(&ftx.frame.payload).is_some());
                    }
                    other => panic!("unexpected codepoint {other:?}"),
                }
            }
        }
        assert_eq!(data_frames, 100);
        assert!(marker_frames > 0, "markers must flow");
    }

    #[test]
    fn non_striped_frames_are_handed_back() {
        let tx_if = group();
        let mut rx_if = tx_if.make_receiver(64);
        let arp = EtherFrame {
            dst: MAC_B0,
            src: MAC_A0,
            ethertype: EtherType::Arp,
            payload: Bytes::from_static(b"who-has"),
        };
        let back = rx_if.input(0, arp.clone());
        assert_eq!(back, Err(arp));
    }

    #[test]
    fn corrupted_ip_header_is_dropped_not_delivered() {
        let mut tx_if = group();
        let mut rx_if = tx_if.make_receiver(64);
        let mut pkt = ip_packet(1, 100);
        let mut raw = pkt.bytes.to_vec();
        raw[8] ^= 0xFF; // mangle TTL: checksum now fails
        pkt.bytes = Bytes::from(raw);
        for ftx in tx_if.output(SimTime::from_micros(10), pkt) {
            if ftx.arrival.is_some() {
                let _ = rx_if.input(ftx.channel, ftx.frame);
            }
        }
        assert!(rx_if.poll().is_none());
    }

    #[test]
    fn weighted_quanta_follow_member_rates() {
        let tx_if = StripeInterface::new(
            vec![member(10, 1, MAC_A0, MAC_B0), member(30, 2, MAC_A1, MAC_B1)],
            MarkerConfig::disabled(),
        );
        let sched = tx_if.tx.scheduler();
        assert_eq!(sched.quantum(1), 3 * sched.quantum(0));
    }

    #[test]
    #[should_panic(expected = "exceeds strIPe MTU")]
    fn oversized_packet_panics() {
        let mut tx_if = group();
        let _ = tx_if.output(SimTime::ZERO, ip_packet(0, 1500));
    }

    #[test]
    fn corrupt_marker_is_ignored() {
        let tx_if = group();
        let mut rx_if = tx_if.make_receiver(64);
        let junk = EtherFrame {
            dst: MAC_B0,
            src: MAC_A0,
            ethertype: EtherType::StripeMarker,
            payload: Bytes::from_static(b"garbage!!"),
        };
        assert!(rx_if.input(0, junk).is_ok());
        assert_eq!(rx_if.stats().markers_seen, 0);
    }
}
